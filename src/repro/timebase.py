"""Calendar and lockdown-timeline utilities for the study period.

The paper analyzes traffic between January 1 and May 17, 2020 at vantage
points in three regions (Central Europe, Southern Europe, US East
Coast).  All analyses are anchored to calendar structure: calendar
weeks, workdays vs. weekends, public holidays, and the region-specific
lockdown timeline (outbreak, lockdown start, relaxation stages).

This module is the single source of truth for those anchors.  Times are
abstract "local time" at the vantage point; the hourly index used by the
rest of the package is ``hours since 2020-01-01 00:00``.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

#: Ordered pandemic phases every region timeline steps through.
PHASES = ("pre", "outbreak", "response", "lockdown", "relaxation", "reopening")

#: First day of the study period (inclusive).
STUDY_START = _dt.date(2020, 1, 1)

#: Last day of the study period (inclusive).  Covers every week used by
#: any figure in the paper (the latest is stage 3, May 10-17).
STUDY_END = _dt.date(2020, 5, 17)

#: Number of days in the study period.
STUDY_DAYS = (STUDY_END - STUDY_START).days + 1

#: Number of hourly bins in the study period.
STUDY_HOURS = STUDY_DAYS * 24

#: Public holidays observed at the European vantage points during the
#: study period.  Easter 2020: Good Friday Apr 10 through Easter Monday
#: Apr 13.  The paper explicitly treats April 10-13 as weekend days.
HOLIDAYS_EUROPE = frozenset(
    {
        _dt.date(2020, 1, 1),  # New Year's Day
        _dt.date(2020, 1, 6),  # Epiphany (observed in parts of CE/SE)
        _dt.date(2020, 4, 10),  # Good Friday
        _dt.date(2020, 4, 11),
        _dt.date(2020, 4, 12),  # Easter Sunday
        _dt.date(2020, 4, 13),  # Easter Monday
        _dt.date(2020, 5, 1),  # Labour Day
    }
)

#: Public holidays at the US vantage point during the study period.
HOLIDAYS_US = frozenset(
    {
        _dt.date(2020, 1, 1),  # New Year's Day
        _dt.date(2020, 1, 20),  # Martin Luther King Jr. Day
        _dt.date(2020, 2, 17),  # Presidents' Day
    }
)

#: The extended New Year / Christmas holiday period that makes week 1
#: unusable as a baseline (the paper normalizes by week 3 instead).
NEW_YEAR_HOLIDAY_END = _dt.date(2020, 1, 6)


class Region(enum.Enum):
    """Geographic region of a vantage point."""

    CENTRAL_EUROPE = "central-europe"
    SOUTHERN_EUROPE = "southern-europe"
    US_EAST = "us-east"


class DayKind(enum.Enum):
    """Ground-truth calendar kind of a day (not the classifier output)."""

    WORKDAY = "workday"
    WEEKEND = "weekend"
    HOLIDAY = "holiday"


@dataclass(frozen=True)
class LockdownTimeline:
    """Region-specific sequence of pandemic response milestones.

    Dates are the first day on which each phase is in effect.
    ``relaxation`` marks the first significant re-opening step and
    ``second_relaxation`` the broader opening (e.g. school re-openings).
    """

    region: Region
    outbreak: _dt.date
    initial_response: _dt.date
    lockdown: _dt.date
    relaxation: _dt.date
    second_relaxation: _dt.date

    def phase(self, day: _dt.date) -> str:
        """Return the phase name in effect on ``day``.

        One of ``"pre"``, ``"outbreak"``, ``"response"``, ``"lockdown"``,
        ``"relaxation"``, ``"reopening"``.
        """
        if day < self.outbreak:
            return "pre"
        if day < self.initial_response:
            return "outbreak"
        if day < self.lockdown:
            return "response"
        if day < self.relaxation:
            return "lockdown"
        if day < self.second_relaxation:
            return "relaxation"
        return "reopening"

    def phase_start(self, phase: str) -> Optional[_dt.date]:
        """First day of ``phase``, or ``None`` for the open-ended "pre"."""
        starts = {
            "outbreak": self.outbreak,
            "response": self.initial_response,
            "lockdown": self.lockdown,
            "relaxation": self.relaxation,
            "reopening": self.second_relaxation,
        }
        return starts.get(phase)

    def ramp_context(
        self, day: _dt.date
    ) -> Tuple[str, Optional[_dt.date], str]:
        """``(phase, phase_start, previous_phase)`` in effect on ``day``.

        This is the only timeline surface the profile layer consults, so
        scenario-event overrides (second waves) can reshape responses by
        wrapping it.
        """
        phase = self.phase(day)
        return phase, self.phase_start(phase), previous_phase(phase)

    def with_dates(self, **dates: _dt.date) -> "LockdownTimeline":
        """Copy of the timeline with some milestone dates replaced."""
        from dataclasses import replace

        return replace(self, **dates)

    def phase_spans(
        self,
        start: Optional[_dt.date] = None,
        end: Optional[_dt.date] = None,
    ) -> List[Tuple[str, _dt.date, _dt.date]]:
        """``(phase, first_day, last_day)`` spans inside ``[start, end]``.

        Defaults to the study period; phases that never occur inside the
        window are omitted.
        """
        lo = start or STUDY_START
        hi = end or STUDY_END
        spans: List[Tuple[str, _dt.date, _dt.date]] = []
        for day in iter_days(lo, hi):
            phase = self.phase(day)
            if spans and spans[-1][0] == phase:
                spans[-1] = (phase, spans[-1][1], day)
            else:
                spans.append((phase, day, day))
        return spans


def previous_phase(phase: str) -> str:
    """The phase preceding ``phase`` ("pre" precedes itself)."""
    idx = PHASES.index(phase)
    return PHASES[max(0, idx - 1)]


#: Central Europe: COVID-19 reached Europe in late January (week 4-5);
#: initial responses in early March; lockdown from March 16 (week 12);
#: first shop re-openings around April 20 (week 17); school openings in
#: a second wave from May 11 (week 20).
TIMELINE_CE = LockdownTimeline(
    region=Region.CENTRAL_EUROPE,
    outbreak=_dt.date(2020, 1, 27),
    initial_response=_dt.date(2020, 3, 9),
    lockdown=_dt.date(2020, 3, 16),
    relaxation=_dt.date(2020, 4, 20),
    second_relaxation=_dt.date(2020, 5, 4),
)

#: Southern Europe (Madrid region): educational system closed from
#: March 11; national state of emergency effective March 14 (week 11);
#: gradual relaxation from late April; further easing in May.
TIMELINE_SE = LockdownTimeline(
    region=Region.SOUTHERN_EUROPE,
    outbreak=_dt.date(2020, 1, 31),
    initial_response=_dt.date(2020, 3, 9),
    lockdown=_dt.date(2020, 3, 14),
    relaxation=_dt.date(2020, 4, 27),
    second_relaxation=_dt.date(2020, 5, 11),
)

#: US East Coast: outbreak recognized later; stay-at-home orders from
#: around March 22 (week 13); phased re-openings from mid-May.
TIMELINE_US = LockdownTimeline(
    region=Region.US_EAST,
    outbreak=_dt.date(2020, 2, 26),
    initial_response=_dt.date(2020, 3, 16),
    lockdown=_dt.date(2020, 3, 22),
    relaxation=_dt.date(2020, 5, 15),
    second_relaxation=_dt.date(2020, 6, 1),
)

TIMELINES = {
    Region.CENTRAL_EUROPE: TIMELINE_CE,
    Region.SOUTHERN_EUROPE: TIMELINE_SE,
    Region.US_EAST: TIMELINE_US,
}


def timeline_for(region: Region) -> LockdownTimeline:
    """Return the lockdown timeline for ``region``."""
    return TIMELINES[region]


@dataclass(frozen=True)
class Week:
    """A contiguous seven-day analysis window.

    The paper uses both ISO calendar weeks (Fig 1, Fig 4, Fig 8) and
    arbitrary seven-day windows anchored at a chosen start day
    (Figs 3, 7, 9, 10, 11).  ``Week`` models the latter; helpers below
    produce ISO weeks as ``Week`` objects too.
    """

    start: _dt.date
    label: str = ""

    @property
    def end(self) -> _dt.date:
        """Last day of the week (inclusive)."""
        return self.start + _dt.timedelta(days=6)

    def days(self) -> List[_dt.date]:
        """The seven days of the week, in order."""
        return [self.start + _dt.timedelta(days=i) for i in range(7)]

    def contains(self, day: _dt.date) -> bool:
        """Whether ``day`` falls inside this week."""
        return self.start <= day <= self.end

    def hour_range(self) -> Tuple[int, int]:
        """Half-open ``(start, stop)`` hourly-index range of the week."""
        start = hour_index(self.start, 0)
        return start, start + 7 * 24


def date_to_day_index(day: _dt.date) -> int:
    """Days since the study start (Jan 1, 2020 -> 0)."""
    return (day - STUDY_START).days


def day_index_to_date(index: int) -> _dt.date:
    """Inverse of :func:`date_to_day_index`."""
    return STUDY_START + _dt.timedelta(days=index)


def hour_index(day: _dt.date, hour: int) -> int:
    """Hourly index of ``hour`` o'clock on ``day``.

    The index is ``hours since 2020-01-01 00:00`` and is the time axis
    used by every aggregate and flow table in the package.
    """
    if not 0 <= hour <= 23:
        raise ValueError(f"hour must be in [0, 23], got {hour}")
    return date_to_day_index(day) * 24 + hour


def hour_index_to_datetime(index: int) -> _dt.datetime:
    """Inverse of :func:`hour_index`, as a naive datetime."""
    base = _dt.datetime.combine(STUDY_START, _dt.time())
    return base + _dt.timedelta(hours=index)


def iso_week(day: _dt.date) -> int:
    """ISO calendar week number of ``day`` (the paper's week axis)."""
    return day.isocalendar()[1]


def iso_week_dates(week: int) -> List[_dt.date]:
    """Days of 2020 ISO calendar week ``week`` within the study period."""
    return [
        d
        for d in iter_days()
        if d.isocalendar()[0] == 2020 and d.isocalendar()[1] == week
    ]


def iter_days(
    start: Optional[_dt.date] = None, end: Optional[_dt.date] = None
) -> Iterator[_dt.date]:
    """Iterate days of the study period (or a sub-range, inclusive)."""
    day = start or STUDY_START
    stop = end or STUDY_END
    while day <= stop:
        yield day
        day += _dt.timedelta(days=1)


def is_weekend(day: _dt.date) -> bool:
    """Whether ``day`` is a Saturday or Sunday."""
    return day.weekday() >= 5


def day_kind(day: _dt.date, region: Region = Region.CENTRAL_EUROPE) -> DayKind:
    """Ground-truth calendar kind of ``day`` in ``region``.

    Holidays take precedence over the weekday grid; the paper treats the
    Easter holidays (April 10-13) as weekend days at the European
    vantage points.
    """
    holidays = HOLIDAYS_US if region is Region.US_EAST else HOLIDAYS_EUROPE
    if day in holidays:
        return DayKind.HOLIDAY
    if is_weekend(day):
        return DayKind.WEEKEND
    return DayKind.WORKDAY


def behaves_like_weekend(
    day: _dt.date, region: Region = Region.CENTRAL_EUROPE
) -> bool:
    """Whether ``day`` is expected to show a weekend-shaped diurnal curve.

    True for weekends, holidays, and the extended New Year vacation
    (through January 6): schools are closed and many people are off,
    so traffic behaves weekend-like even on calendar workdays — the one
    pre-lockdown stretch the paper's Fig 2 classifier "misclassifies".
    The calendar kind (:func:`day_kind`) still reports those days as
    workdays; the mismatch is intended.
    """
    if day <= NEW_YEAR_HOLIDAY_END:
        return True
    return day_kind(day, region) is not DayKind.WORKDAY


def midpoint_workday(
    start: Optional[_dt.date] = None,
    end: Optional[_dt.date] = None,
    region: Region = Region.CENTRAL_EUROPE,
) -> _dt.date:
    """First workday-behaving day at or after the window's midpoint.

    Used to derive probe days for scenario self-checks: the midpoint of
    an arbitrary study window, nudged forward (wrapping to the window
    start) until it behaves like a workday.
    """
    lo = start or STUDY_START
    hi = end or STUDY_END
    if hi < lo:
        raise ValueError("window end precedes start")
    mid = lo + _dt.timedelta(days=(hi - lo).days // 2)
    for day in list(iter_days(mid, hi)) + list(iter_days(lo, hi)):
        if not behaves_like_weekend(day, region):
            return day
    return mid


# --------------------------------------------------------------------------
# The paper's named analysis weeks.
# --------------------------------------------------------------------------

#: Four-week macroscopic comparison (Fig 3): before, just after, after,
#: and well after the lockdown.
MACRO_WEEKS = {
    "base": Week(_dt.date(2020, 2, 19), "base"),
    "stage1": Week(_dt.date(2020, 3, 18), "stage1"),
    "stage2": Week(_dt.date(2020, 4, 22), "stage2"),
    "stage3": Week(_dt.date(2020, 5, 10), "stage3"),
}

#: Port-level analysis weeks at the ISP-CE (Fig 7a).
PORT_WEEKS_ISP = {
    "february": Week(_dt.date(2020, 2, 20), "february"),
    "march": Week(_dt.date(2020, 3, 19), "march"),
    "april": Week(_dt.date(2020, 4, 9), "april"),
}

#: Port-level analysis weeks at the IXP-CE (Fig 7b).
PORT_WEEKS_IXP = {
    "february": Week(_dt.date(2020, 2, 20), "february"),
    "march": Week(_dt.date(2020, 3, 19), "march"),
    "april": Week(_dt.date(2020, 4, 23), "april"),
}

#: Application-class analysis weeks at the ISP (Fig 9, §5).
APPCLASS_WEEKS_ISP = {
    "base": Week(_dt.date(2020, 2, 20), "base"),
    "stage1": Week(_dt.date(2020, 3, 19), "stage1"),
    "stage2": Week(_dt.date(2020, 4, 9), "stage2"),
}

#: Application-class analysis weeks at the IXPs (Fig 9, §5).
APPCLASS_WEEKS_IXP = {
    "base": Week(_dt.date(2020, 2, 20), "base"),
    "stage1": Week(_dt.date(2020, 3, 12), "stage1"),
    "stage2": Week(_dt.date(2020, 4, 23), "stage2"),
}

#: Educational-network analysis weeks (Fig 11, §7).
EDU_WEEKS = {
    "base": Week(_dt.date(2020, 2, 27), "base"),
    "transition": Week(_dt.date(2020, 3, 12), "transition"),
    "online-lecturing": Week(_dt.date(2020, 4, 16), "online-lecturing"),
}

#: EDU flow capture period: 72 days, Feb 28 to May 8, 2020 (§2).
EDU_CAPTURE_START = _dt.date(2020, 2, 28)
EDU_CAPTURE_END = _dt.date(2020, 5, 8)

#: Week used to normalize Fig 1 (third calendar week of January; week 1
#: is dominated by the Christmas-holiday effect).
FIG1_BASELINE_WEEK = 3

#: Baseline month used by the Fig 2 workday/weekend classifier.
PATTERN_BASELINE_START = _dt.date(2020, 2, 1)
PATTERN_BASELINE_END = _dt.date(2020, 2, 29)


def weeks_in_study() -> List[int]:
    """Sorted ISO week numbers fully or partially inside the study period."""
    seen: List[int] = []
    for day in iter_days():
        year, week, _ = day.isocalendar()
        if year == 2020 and week not in seen:
            seen.append(week)
    return seen


def named_weeks(vantage_kind: str) -> Sequence[Week]:
    """All named analysis weeks relevant to a vantage-point kind."""
    if vantage_kind == "edu":
        return list(EDU_WEEKS.values())
    if vantage_kind == "isp":
        weeks = dict(MACRO_WEEKS)
        weeks.update({f"port-{k}": w for k, w in PORT_WEEKS_ISP.items()})
        return list(weeks.values())
    return list(MACRO_WEEKS.values())
