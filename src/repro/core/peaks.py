"""Peak-vs-valley analysis (§9, "Taming the traffic increase").

The discussion section argues that the pandemic's 15-20% growth was
absorbable because it *fills the valleys*: most new traffic lands in
working hours, which sit below the evening peak, so the peak — the
quantity capacity planning is provisioned against — grows much less
than the total.  It also notes that individual links saw increases
"way beyond the overall 15-20%".

This module quantifies both claims from hourly aggregates and from
per-member utilization series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro import timebase
from repro.series import HourlySeries


@dataclass(frozen=True)
class PeakValleySummary:
    """Growth decomposition between two analysis weeks."""

    total_growth: float  # whole-week volume growth
    peak_growth: float  # growth of the weekly peak hour
    valley_growth: float  # growth of the mean off-peak (valley) hours
    peak_hour_base: int  # hour-of-day of the base week's peak
    peak_hour_stage: int  # hour-of-day of the stage week's peak

    @property
    def valleys_filled(self) -> bool:
        """§9's claim: off-peak growth exceeds peak growth."""
        return self.valley_growth > self.peak_growth


def peak_valley_summary(
    series: HourlySeries,
    base_week: timebase.Week,
    stage_week: timebase.Week,
    valley_hours: Tuple[int, int] = (8, 17),
) -> PeakValleySummary:
    """Decompose the base-to-stage growth into peak and valley parts.

    ``valley_hours`` bounds the daytime trough the lockdown filled
    (working hours sit below the traditional evening peak).
    """
    base = series.slice_week(base_week)
    stage = series.slice_week(stage_week)
    base_days = base.values.reshape(7, 24)
    stage_days = stage.values.reshape(7, 24)
    h0, h1 = valley_hours
    if not 0 <= h0 < h1 <= 24:
        raise ValueError(f"bad valley hour range: {valley_hours}")
    base_valley = float(base_days[:, h0:h1].mean())
    stage_valley = float(stage_days[:, h0:h1].mean())
    base_peak = float(base.values.max())
    stage_peak = float(stage.values.max())
    return PeakValleySummary(
        total_growth=stage.total() / base.total() - 1.0,
        peak_growth=stage_peak / base_peak - 1.0,
        valley_growth=stage_valley / base_valley - 1.0,
        peak_hour_base=int(np.argmax(base_days.mean(axis=0))),
        peak_hour_stage=int(np.argmax(stage_days.mean(axis=0))),
    )


@dataclass(frozen=True)
class MemberGrowthDistribution:
    """Distribution of per-member traffic growth at an IXP."""

    growths: Tuple[float, ...]  # per-member stage/base - 1
    aggregate_growth: float

    def quantile(self, q: float) -> float:
        """Growth quantile over the member population."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        return float(np.quantile(self.growths, q))

    @property
    def fraction_above_aggregate(self) -> float:
        """Members growing faster than the platform aggregate."""
        return float(
            np.mean(np.asarray(self.growths) > self.aggregate_growth)
        )

    @property
    def max_growth(self) -> float:
        """The largest single-member growth (§9: 'way beyond 15-20%')."""
        return float(max(self.growths))


def member_growth_distribution(
    base_day: Mapping[int, np.ndarray],
    stage_day: Mapping[int, np.ndarray],
) -> MemberGrowthDistribution:
    """Per-member day-volume growth from per-minute utilization series.

    Utilization is proportional to traffic for a fixed capacity; for
    upgraded ports the comparison is conservative (utilization divides
    by the larger capacity), which only understates §9's claim.
    """
    common = sorted(set(base_day) & set(stage_day))
    if not common:
        raise ValueError("no members present on both days")
    growths = []
    base_total = 0.0
    stage_total = 0.0
    for asn in common:
        base_volume = float(np.asarray(base_day[asn]).sum())
        stage_volume = float(np.asarray(stage_day[asn]).sum())
        base_total += base_volume
        stage_total += stage_volume
        if base_volume > 0:
            growths.append(stage_volume / base_volume - 1.0)
    if not growths or base_total <= 0:
        raise ValueError("base day carries no traffic")
    return MemberGrowthDistribution(
        growths=tuple(growths),
        aggregate_growth=stage_total / base_total - 1.0,
    )


def headroom_exceeded(
    utilizations: Mapping[int, np.ndarray], threshold: float = 0.8
) -> Dict[int, float]:
    """Per member: fraction of the day spent above a planning threshold.

    Operators provision so peaks stay under a utilization ceiling; the
    §9 concern is members whose lockdown traffic pushed them past it
    (triggering the observed port upgrades).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    return {
        asn: float(np.mean(np.asarray(series) > threshold))
        for asn, series in utilizations.items()
    }
