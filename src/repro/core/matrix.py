"""Inter-member traffic matrices at an IXP.

The IXPs in the paper see the full mesh of member-to-member traffic
(§2); several observations — the diversity of the IXP-CE customer base
(§3.1), eyeball members acting as sinks, content/hypergiant members as
sources — are statements about the *structure* of that matrix.  This
module builds the matrix from flows and exposes the structural
statistics:

* per-member sent/received volumes and source-sink asymmetry,
* the top member pairs and how concentrated the matrix is,
* matrix-level comparisons between analysis weeks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flows.table import FlowTable


@dataclass(frozen=True)
class TrafficMatrix:
    """A member-to-member byte matrix."""

    asns: Tuple[int, ...]  # row/column labels, ascending
    volumes: np.ndarray  # [i, j] = bytes from asns[i] to asns[j]

    def __post_init__(self) -> None:
        n = len(self.asns)
        if self.volumes.shape != (n, n):
            raise ValueError("matrix shape does not match the AS labels")

    @property
    def total(self) -> float:
        """Total bytes across the matrix."""
        return float(self.volumes.sum())

    def sent(self, asn: int) -> float:
        """Bytes sourced by ``asn``."""
        return float(self.volumes[self._index(asn), :].sum())

    def received(self, asn: int) -> float:
        """Bytes delivered to ``asn``."""
        return float(self.volumes[:, self._index(asn)].sum())

    def _index(self, asn: int) -> int:
        try:
            return self.asns.index(asn)
        except ValueError:
            raise KeyError(f"AS {asn} not in the matrix") from None

    def asymmetry(self, asn: int) -> float:
        """Source-sink balance in [-1, 1].

        +1 = pure source (only sends), -1 = pure sink (only receives),
        0 = balanced.  Hypergiants/CDNs sit near +1 at an IXP, eyeball
        networks near -1.
        """
        sent, received = self.sent(asn), self.received(asn)
        total = sent + received
        if total <= 0:
            return 0.0
        return (sent - received) / total

    def top_pairs(self, n: int) -> List[Tuple[int, int, float]]:
        """The ``n`` largest (source, destination, bytes) entries."""
        if n <= 0:
            raise ValueError("n must be positive")
        flat = self.volumes.ravel()
        count = min(n, int(np.count_nonzero(flat)))
        if count == 0:
            return []
        order = np.argsort(flat)[::-1][:count]
        size = len(self.asns)
        return [
            (self.asns[i // size], self.asns[i % size], float(flat[i]))
            for i in order
        ]

    def concentration(self, top_fraction: float = 0.01) -> float:
        """Share of bytes carried by the top ``top_fraction`` of pairs.

        IXP matrices are extremely concentrated; a few hypergiant ->
        eyeball pairs carry most of the platform.
        """
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        flat = np.sort(self.volumes.ravel())[::-1]
        if flat.sum() <= 0:
            raise ValueError("matrix carries no traffic")
        k = max(1, int(round(flat.size * top_fraction)))
        return float(flat[:k].sum() / flat.sum())


def build_matrix(
    flows: FlowTable, members: Optional[Sequence[int]] = None
) -> TrafficMatrix:
    """Aggregate flows into a member-to-member byte matrix.

    ``members`` restricts (and orders) the AS universe; by default
    every AS appearing in the flows becomes a row/column.
    """
    src = flows.column("src_asn")
    dst = flows.column("dst_asn")
    n_bytes = flows.column("n_bytes").astype(np.float64)
    if members is None:
        universe = np.unique(np.concatenate([src, dst]))
    else:
        universe = np.asarray(sorted(set(int(a) for a in members)))
        keep = np.isin(src, universe) & np.isin(dst, universe)
        src, dst, n_bytes = src[keep], dst[keep], n_bytes[keep]
    index = {int(asn): i for i, asn in enumerate(universe)}
    size = universe.size
    volumes = np.zeros((size, size))
    if src.size:
        rows = np.vectorize(index.__getitem__)(src)
        cols = np.vectorize(index.__getitem__)(dst)
        np.add.at(volumes, (rows, cols), n_bytes)
    return TrafficMatrix(tuple(int(a) for a in universe), volumes)


def source_sink_split(
    matrix: TrafficMatrix, threshold: float = 0.5
) -> Dict[str, List[int]]:
    """Partition members into sources / sinks / mixed by asymmetry."""
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    groups: Dict[str, List[int]] = {"sources": [], "sinks": [], "mixed": []}
    for asn in matrix.asns:
        value = matrix.asymmetry(asn)
        if value >= threshold:
            groups["sources"].append(asn)
        elif value <= -threshold:
            groups["sinks"].append(asn)
        else:
            groups["mixed"].append(asn)
    return groups


def matrix_growth(
    base: TrafficMatrix, stage: TrafficMatrix
) -> Dict[int, float]:
    """Per-member growth of total (sent + received) platform traffic."""
    growth = {}
    common = set(base.asns) & set(stage.asns)
    for asn in sorted(common):
        before = base.sent(asn) + base.received(asn)
        after = stage.sent(asn) + stage.received(asn)
        if before > 0:
            growth[asn] = after / before - 1.0
    return growth
