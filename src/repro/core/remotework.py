"""Remote-work-relevant AS identification (§3.4, Fig 6).

Two analyses over the ISP's per-AS traffic (including transit):

1. Group ASes by their workday/weekend traffic ratio — companies are
   expected in the workday-dominated group.
2. Scatter each AS's normalized total volume shift (February base week
   vs. a March lockdown week) against its normalized *residential*
   volume shift, where residential traffic is the part exchanged with
   manually selected eyeball networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro import timebase
from repro.flows import groupby
from repro.flows.table import FlowTable


def _per_as_bytes(
    flows: FlowTable, eyeballs: FrozenSet[int]
) -> Dict[int, Tuple[float, float]]:
    """Per source AS: (total bytes, bytes exchanged with eyeball ASes)."""
    src = flows.column("src_asn")
    dst = flows.column("dst_asn")
    n_bytes = flows.column("n_bytes")
    eyeball_arr = np.asarray(sorted(eyeballs), dtype=np.int64)
    to_eyeball = np.isin(dst, eyeball_arr)
    result: Dict[int, Tuple[float, float]] = {}
    # integer-exact per-AS sums; floats only at the API boundary
    uniq, totals = groupby.group_sums(src, n_bytes)
    _, residential = groupby.group_sums(
        src, np.where(to_eyeball, n_bytes, 0)
    )
    for asn, total, res in zip(uniq, totals, residential):
        if int(asn) in eyeballs:
            continue  # the eyeball networks themselves are not scattered
        result[int(asn)] = (float(total), float(res))
    return result


def normalized_difference(before: float, after: float) -> float:
    """Symmetric normalized shift in [-1, 1].

    0 when unchanged, +1 when traffic appears from nothing, -1 when it
    vanishes; 0 when absent in both weeks.
    """
    peak = max(before, after)
    if peak <= 0:
        return 0.0
    return (after - before) / peak


@dataclass(frozen=True)
class ASShift:
    """One point of the Fig 6 scatter."""

    asn: int
    total_shift: float  # x-axis: difference of mean volume
    residential_shift: float  # y-axis: difference of mean eyeball volume
    base_total: float
    base_residential: float

    @property
    def quadrant(self) -> str:
        """Fig 6 quadrant label."""
        total_up = self.total_shift >= 0
        res_up = self.residential_shift >= 0
        if total_up and res_up:
            return "total-up/residential-up"
        if total_up:
            return "total-up/residential-down"
        if res_up:
            return "total-down/residential-up"
        return "total-down/residential-down"


def traffic_shift_scatter(
    base_flows: FlowTable,
    lockdown_flows: FlowTable,
    eyeball_asns: Sequence[int],
) -> List[ASShift]:
    """Fig 6: per-AS total vs. residential volume shift."""
    eyeballs = frozenset(int(a) for a in eyeball_asns)
    if not eyeballs:
        raise ValueError("eyeball AS list must be non-empty")
    before = _per_as_bytes(base_flows, eyeballs)
    after = _per_as_bytes(lockdown_flows, eyeballs)
    points = []
    for asn in sorted(set(before) | set(after)):
        b_total, b_res = before.get(asn, (0.0, 0.0))
        a_total, a_res = after.get(asn, (0.0, 0.0))
        points.append(
            ASShift(
                asn=asn,
                total_shift=normalized_difference(b_total, a_total),
                residential_shift=normalized_difference(b_res, a_res),
                base_total=b_total,
                base_residential=b_res,
            )
        )
    return points


@dataclass(frozen=True)
class ScatterSummary:
    """Aggregate reading of the Fig 6 scatter."""

    n_ases: int
    quadrant_counts: Dict[str, int]
    correlation: float  # Pearson r between the two shifts
    x_axis_band: int  # ASes with major total shift but ~no residential

    def majority_correlated(self) -> bool:
        """§3.4: 'for a majority of the ASes, there is a correlation
        between the increase in traffic involving eyeball networks and
        the total increase'."""
        return self.correlation > 0.4


def summarize_scatter(
    points: Sequence[ASShift], residential_epsilon: float = 0.05
) -> ScatterSummary:
    """Quadrant counts, correlation, and the x-axis band of Fig 6."""
    if len(points) < 3:
        raise ValueError("scatter needs at least three ASes")
    xs = np.array([p.total_shift for p in points])
    ys = np.array([p.residential_shift for p in points])
    quadrants: Dict[str, int] = {}
    for p in points:
        quadrants[p.quadrant] = quadrants.get(p.quadrant, 0) + 1
    # Guard against degenerate variance before calling corrcoef.
    if xs.std() == 0 or ys.std() == 0:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(xs, ys)[0, 1])
    x_axis_band = sum(
        1
        for p in points
        if abs(p.residential_shift) <= residential_epsilon
        and abs(p.total_shift) > residential_epsilon
    )
    return ScatterSummary(
        n_ases=len(points),
        quadrant_counts=quadrants,
        correlation=correlation,
        x_axis_band=x_axis_band,
    )


def group_by_workday_ratio(
    flows: FlowTable,
    region: timebase.Region,
    workday_threshold: float = 1.4,
    weekend_threshold: float = 0.9,
) -> Dict[str, List[int]]:
    """§3.4 grouping: workday-dominated / balanced / weekend-dominated.

    The ratio compares each AS's *average daily* traffic on workdays
    against weekend days.  Companies are expected in the
    workday-dominated group.
    """
    src = flows.column("src_asn")
    hours = flows.column("hour")
    n_bytes = flows.column("n_bytes")
    day_indices = hours // 24
    weekend_days = set()
    workday_count: Dict[int, int] = {"workday": 0, "weekend": 0}  # type: ignore[assignment]
    n_workdays = 0
    n_weekends = 0
    for day_index in np.unique(day_indices):
        date = timebase.day_index_to_date(int(day_index))
        if timebase.behaves_like_weekend(date, region):
            weekend_days.add(int(day_index))
            n_weekends += 1
        else:
            n_workdays += 1
    if n_workdays == 0 or n_weekends == 0:
        raise ValueError("flows must span both workdays and weekend days")
    is_weekend = np.isin(day_indices, np.asarray(sorted(weekend_days)))
    uniq, weekend_bytes = groupby.group_sums(
        src, np.where(is_weekend, n_bytes, 0)
    )
    _, workday_bytes = groupby.group_sums(
        src, np.where(is_weekend, 0, n_bytes)
    )
    groups: Dict[str, List[int]] = {
        "workday-dominated": [],
        "balanced": [],
        "weekend-dominated": [],
    }
    for asn, wd, we in zip(uniq, workday_bytes, weekend_bytes):
        wd_daily = wd / n_workdays
        we_daily = we / n_weekends
        if we_daily <= 0 and wd_daily <= 0:
            continue
        ratio = wd_daily / we_daily if we_daily > 0 else np.inf
        if ratio >= workday_threshold:
            groups["workday-dominated"].append(int(asn))
        elif ratio <= weekend_threshold:
            groups["weekend-dominated"].append(int(asn))
        else:
            groups["balanced"].append(int(asn))
    return groups
