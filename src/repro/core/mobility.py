"""Fixed-vs-mobile divergence and the roaming mobility proxy.

Fig 1 contrasts fixed-network growth with the mobile operator's flat
demand and the roaming exchange's collapse; the related work (§8)
confirms the mobility interpretation against operator studies and
Google's mobility reports.  This module quantifies those contrasts:

* :func:`divergence_series` — weekly gap between fixed-line and mobile
  demand (people at home substitute fixed for mobile connectivity),
* :func:`roaming_mobility_proxy` — normalized roaming volume as a
  stand-in for international travel,
* :func:`divergence_onset_week` — when the substitution starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


from repro.core import aggregate
from repro.series import HourlySeries


@dataclass(frozen=True)
class MobilitySummary:
    """Headline mobility indicators over the study period."""

    max_divergence: float  # peak (fixed - mobile) normalized gap
    divergence_onset_week: int
    roaming_floor: float  # minimum normalized roaming volume
    roaming_floor_week: int

    @property
    def substitution_detected(self) -> bool:
        """Fixed demand pulls away from mobile by ≥ 10 points."""
        return self.max_divergence >= 0.10

    @property
    def travel_collapse_detected(self) -> bool:
        """Roaming falls by at least 40% from its baseline."""
        return self.roaming_floor <= 0.60


def divergence_series(
    fixed: HourlySeries, mobile: HourlySeries
) -> Dict[int, float]:
    """Per-week normalized gap ``fixed - mobile``.

    Both series are normalized to the Fig 1 baseline week first, so a
    gap of 0.2 means fixed demand sits 20 points above mobile relative
    to their respective January levels.
    """
    fixed_weekly = aggregate.weekly_normalized(fixed).as_dict()
    mobile_weekly = aggregate.weekly_normalized(mobile).as_dict()
    common = sorted(set(fixed_weekly) & set(mobile_weekly))
    if not common:
        raise ValueError("series share no complete weeks")
    return {w: fixed_weekly[w] - mobile_weekly[w] for w in common}


def divergence_onset_week(
    divergence: Dict[int, float], threshold: float = 0.05
) -> int:
    """First week where the gap exceeds ``threshold`` and stays there.

    Raises if the gap never sustainedly exceeds the threshold.
    """
    weeks = sorted(divergence)
    for i, week in enumerate(weeks):
        rest = [divergence[w] for w in weeks[i:]]
        if rest and min(rest[:3]) > threshold:
            return week
    raise ValueError("no sustained fixed/mobile divergence found")


def roaming_mobility_proxy(roaming: HourlySeries) -> Dict[int, float]:
    """Weekly normalized roaming volume — the travel proxy."""
    return aggregate.weekly_normalized(roaming).as_dict()


def summarize(
    fixed: HourlySeries,
    mobile: HourlySeries,
    roaming: HourlySeries,
) -> MobilitySummary:
    """Compute the headline mobility indicators."""
    divergence = divergence_series(fixed, mobile)
    gap_week, gap = max(divergence.items(), key=lambda kv: kv[1])
    proxy = roaming_mobility_proxy(roaming)
    floor_week, floor = min(proxy.items(), key=lambda kv: kv[1])
    return MobilitySummary(
        max_divergence=gap,
        divergence_onset_week=divergence_onset_week(divergence),
        roaming_floor=floor,
        roaming_floor_week=floor_week,
    )
