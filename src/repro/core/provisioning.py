"""Capacity-provisioning policy simulation (§9).

§9 observes that operators plan for ~30% yearly growth, yet the
pandemic moved comparable demand "within only a few days" — absorbed by
over-provisioned headroom plus rapid port upgrades (1,500 Gbps at the
IXP-CE alone).  This module simulates provisioning policies against a
weekly demand series and reports how each copes:

* **scheduled** — the pre-pandemic practice: one planned annual upgrade
  sized for the expected yearly growth,
* **reactive** — upgrade when peak utilization crosses a threshold,
  with a configurable procurement lead time,
* **headroom** — like reactive, but sized so post-upgrade utilization
  returns to a target.

Outputs per policy: capacity timeline, number/volume of upgrades, and
weeks spent above the congestion threshold (the operational pain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class PolicyOutcome:
    """Simulation result for one provisioning policy."""

    policy: str
    capacity: Tuple[float, ...]  # per week
    utilization: Tuple[float, ...]  # per week (demand / capacity)
    upgrades: Tuple[Tuple[int, float], ...]  # (week index, added)
    weeks_congested: int  # weeks with utilization above the threshold

    @property
    def total_added(self) -> float:
        """Capacity added over the simulation."""
        return sum(step for _, step in self.upgrades)

    @property
    def peak_utilization(self) -> float:
        """Worst weekly utilization seen."""
        return max(self.utilization)


def _validate(demand: Sequence[float], threshold: float) -> np.ndarray:
    array = np.asarray(demand, dtype=np.float64)
    if array.ndim != 1 or array.size < 2:
        raise ValueError("demand must be a 1-D series of >= 2 weeks")
    if np.any(array <= 0):
        raise ValueError("demand must be positive")
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    return array


def simulate_scheduled(
    demand: Sequence[float],
    initial_capacity: float,
    annual_growth: float = 0.30,
    upgrade_week: int = 26,
    threshold: float = 0.8,
) -> PolicyOutcome:
    """The annual-planning policy: one upgrade at ``upgrade_week``.

    The upgrade is sized for the planned yearly growth — which is
    exactly what the pandemic's compressed demand shift breaks.
    """
    array = _validate(demand, threshold)
    if initial_capacity <= 0:
        raise ValueError("initial capacity must be positive")
    capacity = np.full(array.size, initial_capacity)
    upgrades: List[Tuple[int, float]] = []
    if 0 <= upgrade_week < array.size:
        step = initial_capacity * annual_growth
        capacity[upgrade_week:] += step
        upgrades.append((upgrade_week, step))
    utilization = array / capacity
    return PolicyOutcome(
        policy="scheduled",
        capacity=tuple(capacity),
        utilization=tuple(utilization),
        upgrades=tuple(upgrades),
        weeks_congested=int(np.sum(utilization > threshold)),
    )


def simulate_reactive(
    demand: Sequence[float],
    initial_capacity: float,
    threshold: float = 0.8,
    lead_time_weeks: int = 2,
    step_fraction: float = 0.25,
    target: Optional[float] = None,
) -> PolicyOutcome:
    """Threshold-triggered upgrades with procurement lead time.

    When weekly utilization crosses ``threshold``, an order is placed;
    it lands ``lead_time_weeks`` later.  ``step_fraction`` sizes the
    step relative to current capacity; passing ``target`` instead sizes
    each step so utilization returns to the target at current demand
    (the "headroom" variant).
    """
    array = _validate(demand, threshold)
    if initial_capacity <= 0:
        raise ValueError("initial capacity must be positive")
    if lead_time_weeks < 0:
        raise ValueError("lead time cannot be negative")
    if target is not None and not 0.0 < target < threshold:
        raise ValueError("target must be below the trigger threshold")
    capacity = np.full(array.size, initial_capacity)
    pending: Dict[int, float] = {}  # arrival week -> added capacity
    upgrades: List[Tuple[int, float]] = []
    ordered_until = -1  # suppress duplicate orders while one is pending
    for week in range(array.size):
        if week in pending:
            capacity[week:] += pending.pop(week)
        utilization = array[week] / capacity[week]
        if utilization > threshold and week > ordered_until:
            if target is not None:
                needed = array[week] / target - capacity[week]
                step = max(needed, 0.0)
            else:
                step = capacity[week] * step_fraction
            if step > 0:
                arrival = week + lead_time_weeks
                if arrival == week:
                    # Zero lead time: the capacity lands immediately.
                    capacity[week:] += step
                    upgrades.append((week, step))
                elif arrival < array.size:
                    pending[arrival] = pending.get(arrival, 0.0) + step
                    upgrades.append((arrival, step))
                ordered_until = arrival
    utilization_series = array / capacity
    return PolicyOutcome(
        policy="headroom" if target is not None else "reactive",
        capacity=tuple(capacity),
        utilization=tuple(utilization_series),
        upgrades=tuple(upgrades),
        weeks_congested=int(np.sum(utilization_series > threshold)),
    )


def compare_policies(
    demand: Sequence[float],
    initial_capacity: float,
    threshold: float = 0.8,
    lead_time_weeks: int = 2,
) -> Dict[str, PolicyOutcome]:
    """Run all three policies over the same demand series."""
    return {
        "scheduled": simulate_scheduled(
            demand, initial_capacity, threshold=threshold
        ),
        "reactive": simulate_reactive(
            demand, initial_capacity, threshold=threshold,
            lead_time_weeks=lead_time_weeks,
        ),
        "headroom": simulate_reactive(
            demand, initial_capacity, threshold=threshold,
            lead_time_weeks=lead_time_weeks, target=0.6,
        ),
    }
