"""Hypergiant vs. other-AS traffic decomposition (§3.2, Fig 4).

Splits a flow table into traffic sourced by the Table 2 hypergiants and
traffic from all other ASes, then tracks each group's normalized growth
per calendar week, separated by day kind (workday/weekend) and daypart
(working hours 9:00-16:59 vs. evening 17:00-24:00), exactly the four
panels of Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import timebase
from repro.flows.table import FlowTable
from repro.netbase.asdb import HYPERGIANT_ASNS

#: Fig 4's dayparts as half-open hour ranges.
DAYPARTS: Mapping[str, Tuple[int, int]] = {
    "working-hours": (9, 17),  # 09:00-16:59
    "evening": (17, 24),  # 17:00-24:00
}

#: The curves of one Fig 4 panel: (day kind, daypart).
CURVES: Tuple[Tuple[str, str], ...] = (
    ("workday", "working-hours"),
    ("workday", "evening"),
    ("weekend", "working-hours"),
    ("weekend", "evening"),
)


def hypergiant_share(
    flows: FlowTable, hypergiants: FrozenSet[int] = HYPERGIANT_ASNS
) -> float:
    """Fraction of bytes sourced by hypergiant ASes.

    §3.2 reports ~75% of traffic delivered to ISP-CE end users.
    """
    total = flows.total_bytes()
    if total == 0:
        raise ValueError("flow table is empty")
    by_asn = flows.bytes_by("src_asn")
    hyper = sum(v for asn, v in by_asn.items() if asn in hypergiants)
    return hyper / total


@dataclass(frozen=True)
class GroupGrowth:
    """Normalized weekly growth curves for one AS group."""

    group: str
    #: ``{(day kind, daypart): {week: normalized volume}}``
    curves: Dict[Tuple[str, str], Dict[int, float]]

    def curve(self, day_kind: str, daypart: str) -> Dict[int, float]:
        """One of the four Fig 4 curves."""
        return dict(self.curves[(day_kind, daypart)])


def _weekly_daypart_volumes(
    flows: FlowTable,
    region: timebase.Region,
    weeks: Sequence[int],
) -> Dict[Tuple[str, str], Dict[int, float]]:
    """Raw byte volume per (day kind, daypart, week), averaged per day."""
    volumes: Dict[Tuple[str, str], Dict[int, List[float]]] = {
        curve: {} for curve in CURVES
    }
    hours = flows.column("hour")
    n_bytes = flows.column("n_bytes")
    for week in weeks:
        for day in timebase.iso_week_dates(week):
            kind = (
                "weekend"
                if timebase.behaves_like_weekend(day, region)
                else "workday"
            )
            day_start = timebase.hour_index(day, 0)
            for daypart, (h0, h1) in DAYPARTS.items():
                mask = (hours >= day_start + h0) & (hours < day_start + h1)
                volumes[(kind, daypart)].setdefault(week, []).append(
                    float(n_bytes[mask].sum())
                )
    return {
        curve: {week: float(np.mean(vals)) for week, vals in per_week.items()}
        for curve, per_week in volumes.items()
    }


def group_growth(
    flows: FlowTable,
    region: timebase.Region,
    baseline_week: int,
    weeks: Optional[Sequence[int]] = None,
    hypergiants: FrozenSet[int] = HYPERGIANT_ASNS,
) -> Dict[str, GroupGrowth]:
    """Fig 4: normalized weekly growth for hypergiants vs. other ASes.

    Each curve is normalized by its own baseline-week value, so the two
    groups' *relative* growth is directly comparable — the paper's
    finding is that the other-AS curves dominate the hypergiants' after
    the lockdown.
    """
    weeks = list(weeks or timebase.weeks_in_study())
    if baseline_week not in weeks:
        raise ValueError("baseline week must be among the analyzed weeks")
    src = flows.column("src_asn")
    masks = {
        "hypergiants": np.isin(src, np.asarray(sorted(hypergiants))),
    }
    masks["other"] = ~masks["hypergiants"]
    result: Dict[str, GroupGrowth] = {}
    for group, mask in masks.items():
        sub = flows.filter(mask)
        raw = _weekly_daypart_volumes(sub, region, weeks)
        curves: Dict[Tuple[str, str], Dict[int, float]] = {}
        for curve, per_week in raw.items():
            base = per_week.get(baseline_week)
            if not base:
                raise ValueError(
                    f"baseline week {baseline_week} empty for {group}/{curve}"
                )
            curves[curve] = {
                week: value / base for week, value in per_week.items()
            }
        result[group] = GroupGrowth(group=group, curves=curves)
    return result


def other_dominates_after(
    growth: Mapping[str, GroupGrowth],
    lockdown_week: int,
    day_kind: str = "workday",
    daypart: str = "working-hours",
) -> bool:
    """The paper's Fig 4 takeaway, testable: from the lockdown week on,
    the other-AS growth curve sits above the hypergiants' curve."""
    hyper = growth["hypergiants"].curve(day_kind, daypart)
    other = growth["other"].curve(day_kind, daypart)
    post = [w for w in hyper if w >= lockdown_week and w in other]
    if not post:
        raise ValueError("no post-lockdown weeks in the growth curves")
    wins = sum(1 for w in post if other[w] > hyper[w])
    return wins >= 0.8 * len(post)
