"""Workday-like vs. weekend-like day classification (Figs 2b, 2c).

The paper's method (§1): "we call a traffic pattern a workday pattern
if the traffic spikes in the evening hours and a weekend pattern if its
main activity gains significant momentum at about 9 to 10 am in the
morning already.  For our classification, we use baseline data from Feb
2020 at the aggregation level of 6 hours.  Then we apply this
classification to all days."

Implementation: build reference 6-hour-bin profiles from February's
calendar workdays and weekends (each day's profile normalized to sum
1, so only the *shape* matters), then label every day by
nearest-centroid distance.  The headline result is that from mid-March
onward almost all days — including calendar workdays — classify as
weekend-like.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import timebase
from repro.series import HourlySeries

#: The paper's aggregation level for the classifier.
DEFAULT_BIN_HOURS = 6


def _day_shape(values: np.ndarray, bin_hours: int) -> np.ndarray:
    """A day's traffic shape: coarse bins normalized to sum one."""
    if values.shape[0] != 24:
        raise ValueError("expected 24 hourly values")
    if 24 % bin_hours != 0:
        raise ValueError(f"bin size {bin_hours} does not divide 24")
    binned = values.reshape(-1, bin_hours).sum(axis=1)
    total = binned.sum()
    if total <= 0:
        raise ValueError("day carries no traffic")
    return binned / total


@dataclass(frozen=True)
class PatternBaseline:
    """Reference shapes learned from the February baseline."""

    workday_shape: np.ndarray
    weekend_shape: np.ndarray
    bin_hours: int

    def classify_shape(self, shape: np.ndarray) -> str:
        """``"workday-like"`` or ``"weekend-like"`` by nearest centroid."""
        d_work = float(np.linalg.norm(shape - self.workday_shape))
        d_weekend = float(np.linalg.norm(shape - self.weekend_shape))
        return "workday-like" if d_work < d_weekend else "weekend-like"


@dataclass(frozen=True)
class DayClassification:
    """Classifier output for one day."""

    day: _dt.date
    predicted: str  # "workday-like" | "weekend-like"
    calendar_kind: timebase.DayKind

    @property
    def matches_calendar(self) -> bool:
        """Whether the prediction agrees with the calendar.

        Holidays count as weekend days (the paper colors agreement of
        weekend-like holidays blue).
        """
        calendar_weekendish = self.calendar_kind is not timebase.DayKind.WORKDAY
        return (self.predicted == "weekend-like") == calendar_weekendish


def fit_baseline(
    series: HourlySeries,
    region: timebase.Region,
    bin_hours: int = DEFAULT_BIN_HOURS,
    baseline_start: _dt.date = timebase.PATTERN_BASELINE_START,
    baseline_end: _dt.date = timebase.PATTERN_BASELINE_END,
) -> PatternBaseline:
    """Learn the workday/weekend reference shapes from the baseline month."""
    workdays: List[np.ndarray] = []
    weekends: List[np.ndarray] = []
    for day in timebase.iter_days(baseline_start, baseline_end):
        shape = _day_shape(series.day_values(day), bin_hours)
        if timebase.behaves_like_weekend(day, region):
            weekends.append(shape)
        else:
            workdays.append(shape)
    if not workdays or not weekends:
        raise ValueError("baseline period lacks workdays or weekend days")
    return PatternBaseline(
        workday_shape=np.mean(workdays, axis=0),
        weekend_shape=np.mean(weekends, axis=0),
        bin_hours=bin_hours,
    )


def classify_days(
    series: HourlySeries,
    region: timebase.Region,
    baseline: Optional[PatternBaseline] = None,
    start: Optional[_dt.date] = None,
    end: Optional[_dt.date] = None,
    bin_hours: int = DEFAULT_BIN_HOURS,
) -> List[DayClassification]:
    """Classify every day of ``series`` (or a date sub-range).

    The default range is the series' own full span; Fig 2 uses
    Jan 1 - May 11.
    """
    baseline = baseline or fit_baseline(series, region, bin_hours)
    start = start or series.start_date
    if end is None:
        last_hour = series.stop_hour - 1
        end = timebase.hour_index_to_datetime(last_hour).date()
    results = []
    for day in timebase.iter_days(start, end):
        shape = _day_shape(series.day_values(day), baseline.bin_hours)
        results.append(
            DayClassification(
                day=day,
                predicted=baseline.classify_shape(shape),
                calendar_kind=timebase.day_kind(day, region),
            )
        )
    return results


@dataclass(frozen=True)
class PatternShift:
    """Summary of the Fig 2b/2c observation."""

    pre_lockdown_agreement: float  # fraction of days matching calendar
    post_lockdown_weekendlike_workdays: float  # workdays classified weekend-like
    post_lockdown_agreement_weekends: float

    def shifted(self) -> bool:
        """The paper's core finding: post-lockdown workdays classify
        weekend-like while pre-lockdown days track the calendar."""
        return (
            self.pre_lockdown_agreement > 0.7
            and self.post_lockdown_weekendlike_workdays > 0.7
        )


def summarize_shift(
    classifications: Sequence[DayClassification],
    lockdown_start: _dt.date,
    pre_start: Optional[_dt.date] = None,
) -> PatternShift:
    """Quantify the shift to weekend-like patterns around the lockdown.

    ``pre_start`` defaults to the end of the New Year holidays, which
    the paper calls out as the one pre-lockdown stretch that (rightly)
    misclassifies.
    """
    pre_start = pre_start or (
        timebase.NEW_YEAR_HOLIDAY_END + _dt.timedelta(days=1)
    )
    pre = [
        c
        for c in classifications
        if pre_start <= c.day < lockdown_start
    ]
    post = [c for c in classifications if c.day >= lockdown_start]
    post_workdays = [
        c for c in post if c.calendar_kind is timebase.DayKind.WORKDAY
    ]
    post_weekendish = [
        c for c in post if c.calendar_kind is not timebase.DayKind.WORKDAY
    ]
    if not pre or not post_workdays:
        raise ValueError("classification range does not span the lockdown")

    def _fraction(items: Sequence[DayClassification], predicate) -> float:
        return sum(1 for c in items if predicate(c)) / len(items)

    return PatternShift(
        pre_lockdown_agreement=_fraction(pre, lambda c: c.matches_calendar),
        post_lockdown_weekendlike_workdays=_fraction(
            post_workdays, lambda c: c.predicted == "weekend-like"
        ),
        post_lockdown_agreement_weekends=(
            _fraction(post_weekendish, lambda c: c.predicted == "weekend-like")
            if post_weekendish
            else 1.0
        ),
    )
