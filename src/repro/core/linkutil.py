"""Link-utilization ECDFs at the IXP (§3.3, Fig 5).

For every member port, reduce one day's per-minute utilization series
to its minimum, average, and maximum, then compare the ECDFs of those
statistics between the base week's workday and a stage-2 workday.  The
paper's observation: all three stage-2 curves are shifted right —
*many* members, not just hypergiants, carry more traffic relative to
their port capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ECDF:
    """Empirical CDF over a sample."""

    sorted_values: np.ndarray

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ECDF":
        array = np.sort(np.asarray(values, dtype=np.float64))
        if array.size == 0:
            raise ValueError("ECDF needs at least one value")
        return cls(array)

    def fraction_at_or_below(self, x: float) -> float:
        """F(x): fraction of the sample <= x."""
        return float(
            np.searchsorted(self.sorted_values, x, side="right")
        ) / self.sorted_values.size

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        return float(np.quantile(self.sorted_values, q))

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """F(x) over a grid (the plotted Fig 5 curve)."""
        return np.searchsorted(
            self.sorted_values, np.asarray(xs), side="right"
        ) / self.sorted_values.size


@dataclass(frozen=True)
class UtilizationStats:
    """Per-member daily min/avg/max utilization for one day."""

    minimum: Dict[int, float]
    average: Dict[int, float]
    maximum: Dict[int, float]

    def ecdfs(self) -> Dict[str, ECDF]:
        """ECDF per statistic over the member population."""
        return {
            "minimum": ECDF.from_values(list(self.minimum.values())),
            "average": ECDF.from_values(list(self.average.values())),
            "maximum": ECDF.from_values(list(self.maximum.values())),
        }


def reduce_day(utilizations: Mapping[int, np.ndarray]) -> UtilizationStats:
    """Reduce per-minute member utilization series to daily statistics."""
    if not utilizations:
        raise ValueError("no member utilization series")
    minimum: Dict[int, float] = {}
    average: Dict[int, float] = {}
    maximum: Dict[int, float] = {}
    for asn, series in utilizations.items():
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"bad utilization series for AS {asn}")
        minimum[asn] = float(arr.min())
        average[asn] = float(arr.mean())
        maximum[asn] = float(arr.max())
    return UtilizationStats(minimum, average, maximum)


def right_shift_fraction(
    base: ECDF, stage: ECDF, grid: Sequence[float] = ()
) -> float:
    """Fraction of grid points where the stage ECDF sits at or below the
    base ECDF (i.e. the stage distribution is shifted right).

    1.0 means first-order stochastic dominance of the stage-2
    utilizations over the base week's on the grid — Fig 5's "all curves
    are shifted to the right".
    """
    if len(grid) == 0:
        grid = np.linspace(0.01, 1.0, 100)
    base_vals = base.evaluate(grid)
    stage_vals = stage.evaluate(grid)
    return float(np.mean(stage_vals <= base_vals + 1e-12))


def compare_days(
    base_day: Mapping[int, np.ndarray],
    stage_day: Mapping[int, np.ndarray],
) -> Dict[str, Tuple[ECDF, ECDF]]:
    """Fig 5's six curves: (base, stage-2) ECDF per statistic."""
    base_stats = reduce_day(base_day).ecdfs()
    stage_stats = reduce_day(stage_day).ecdfs()
    return {
        stat: (base_stats[stat], stage_stats[stat])
        for stat in ("minimum", "average", "maximum")
    }


def downsample_utilization(
    series: np.ndarray, minutes: int
) -> np.ndarray:
    """Average a per-minute utilization series into coarser bins.

    §3.3 measures per *minute*; billing and capacity tools often
    average over 5 or 60 minutes, which systematically understates
    peaks (bursts average away).  ``minutes`` must divide the series
    length.
    """
    array = np.asarray(series, dtype=np.float64)
    if minutes < 1:
        raise ValueError("minutes must be positive")
    if array.ndim != 1 or array.size % minutes != 0:
        raise ValueError(
            f"cannot average {array.size} minutes into {minutes}-minute bins"
        )
    return array.reshape(-1, minutes).mean(axis=1)


def peak_understatement(
    utilizations: Mapping[int, np.ndarray], minutes: int
) -> float:
    """Median ratio of coarse-grained to per-minute peak utilization.

    1.0 means the averaging window does not hide peaks; values below 1
    quantify how much a ``minutes``-minute view understates the §3.3
    per-minute maxima.
    """
    ratios = []
    for series in utilizations.values():
        fine_peak = float(np.asarray(series).max())
        if fine_peak <= 0:
            continue
        coarse_peak = float(downsample_utilization(series, minutes).max())
        ratios.append(coarse_peak / fine_peak)
    if not ratios:
        raise ValueError("no member with positive utilization")
    return float(np.median(ratios))
