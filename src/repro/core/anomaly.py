"""Robust anomaly detection on daily traffic series.

Fig 8 contains a two-day plunge in gaming volume that the authors
manually verified as a provider outage ("we verified that this is not a
measurement artifact").  This module automates that verification step.

Two scoring methods:

* ``"wow"`` (default) — robust z-scores over *week-over-week log
  ratios* ``log(v_d / v_{d-7})``.  Comparing each day against the same
  weekday one week earlier removes weekly seasonality and tolerates the
  gradual lockdown regime change (a +5%/week drift contributes a small,
  constant log ratio), while a genuine outage produces an extreme
  negative ratio on its days.
* ``"level"`` — robust z-scores of the raw values against a trailing
  window; appropriate for series without weekly structure.

Both use median/MAD statistics, so a handful of anomalous days cannot
poison the reference.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

#: Scale factor making the MAD a consistent sigma estimator under
#: normality.
MAD_SIGMA = 1.4826

#: Supported scoring methods.
METHODS = ("wow", "level")


@dataclass(frozen=True)
class Anomaly:
    """One flagged day."""

    day: _dt.date
    value: float
    expected: float  # reference level for the day
    z_score: float  # robust z (negative = drop)

    @property
    def kind(self) -> str:
        """``"drop"`` or ``"surge"``."""
        return "drop" if self.z_score < 0 else "surge"

    @property
    def relative_deviation(self) -> float:
        """Deviation relative to the expected level."""
        if self.expected == 0:
            return 0.0
        return self.value / self.expected - 1.0


def robust_z_scores(
    values: Sequence[float], window: int = 14
) -> np.ndarray:
    """Trailing-window robust z-score per day (the "level" method).

    The first ``window`` days use the leading window instead, so early
    days are still scored.  Windows with zero MAD yield z = 0 for
    values at the median and ±inf otherwise — callers threshold on
    magnitude, so that behavior is safe.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if window < 3:
        raise ValueError("window must be at least 3 days")
    n = array.size
    scores = np.zeros(n)
    for i in range(n):
        if i >= window:
            reference = array[i - window : i]
        else:
            upper = min(n, window + 1)
            reference = np.delete(array[:upper], i)
        median = float(np.median(reference))
        mad = float(np.median(np.abs(reference - median)))
        sigma = MAD_SIGMA * mad
        deviation = array[i] - median
        if sigma > 0:
            scores[i] = deviation / sigma
        elif deviation != 0:
            scores[i] = np.inf if deviation > 0 else -np.inf
    return scores


def week_over_week_scores(values: Sequence[float]) -> np.ndarray:
    """Robust z-scores of ``log(v_d / v_{d-7})`` (the "wow" method).

    The first seven days have no reference and score zero.  The MAD is
    taken over the whole ratio series, which robustly absorbs gradual
    regime drift while leaving outage ratios extreme.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1 or array.size == 0:
        raise ValueError("values must be a non-empty 1-D sequence")
    if np.any(array <= 0):
        raise ValueError("week-over-week scoring needs positive values")
    n = array.size
    scores = np.zeros(n)
    if n <= 7:
        return scores
    ratios = np.log(array[7:] / array[:-7])
    median = float(np.median(ratios))
    mad = float(np.median(np.abs(ratios - median)))
    sigma = MAD_SIGMA * mad
    if sigma > 0:
        scores[7:] = (ratios - median) / sigma
    else:
        nonzero = ratios != median
        scores[7:][nonzero] = np.where(
            ratios[nonzero] > median, np.inf, -np.inf
        )
    return scores


def detect_anomalies(
    daily: Mapping[_dt.date, float],
    threshold: float = 4.0,
    window: int = 14,
    method: str = "wow",
) -> List[Anomaly]:
    """Flag days whose robust z-score magnitude exceeds ``threshold``."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}")
    days = sorted(daily)
    values = np.asarray([daily[d] for d in days], dtype=np.float64)
    if method == "wow":
        scores = week_over_week_scores(values)
    else:
        scores = robust_z_scores(values, window)
    anomalies = []
    for i, day in enumerate(days):
        if abs(scores[i]) >= threshold:
            if method == "wow":
                expected = float(values[i - 7])
            elif i >= window:
                expected = float(np.median(values[i - window : i]))
            else:
                upper = min(len(values), window + 1)
                expected = float(np.median(np.delete(values[:upper], i)))
            anomalies.append(
                Anomaly(
                    day=day,
                    value=float(values[i]),
                    expected=expected,
                    z_score=float(scores[i]),
                )
            )
    return anomalies


def detect_outage_days(
    daily: Mapping[_dt.date, float],
    threshold: float = 4.0,
    window: int = 14,
    method: str = "wow",
) -> List[_dt.date]:
    """Days flagged as *drops* (the Fig 8 outage signature)."""
    return [
        a.day
        for a in detect_anomalies(daily, threshold, window, method)
        if a.kind == "drop"
    ]
