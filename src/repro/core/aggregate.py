"""Volume aggregation and normalization (Figs 1, 2a, 3; §3.1).

All inputs are :class:`repro.series.HourlySeries` — either model
aggregates or per-hour byte sums produced from a flow table with
:meth:`FlowTable.hourly_bytes`.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import timebase
from repro.series import HourlySeries


@dataclass(frozen=True)
class WeeklySeries:
    """Average daily traffic per ISO week, normalized to a baseline week.

    The Fig 1 presentation: one point per calendar week, value 1.0 at
    the baseline (third January week).
    """

    weeks: Tuple[int, ...]
    values: Tuple[float, ...]
    baseline_week: int

    def as_dict(self) -> Dict[int, float]:
        """``{week number: normalized value}``."""
        return dict(zip(self.weeks, self.values))

    def value(self, week: int) -> float:
        """Normalized value of one week."""
        return self.as_dict()[week]


def weekly_normalized(
    series: HourlySeries,
    baseline_week: int = timebase.FIG1_BASELINE_WEEK,
) -> WeeklySeries:
    """Fig 1 transform: daily traffic averaged per week / baseline week.

    Only weeks fully contained in the series are reported; the baseline
    week must be among them.
    """
    averages: Dict[int, float] = {}
    for week in timebase.weeks_in_study():
        days = timebase.iso_week_dates(week)
        if not days:
            continue
        start = timebase.hour_index(days[0], 0)
        stop = timebase.hour_index(days[-1], 23) + 1
        if not series.covers(start, stop):
            continue
        total = series.slice_hours(start, stop).total()
        averages[week] = total / len(days)
    if baseline_week not in averages:
        raise ValueError(
            f"baseline week {baseline_week} not covered by the series"
        )
    base = averages[baseline_week]
    if base <= 0:
        raise ValueError("baseline week has no traffic")
    weeks = tuple(sorted(averages))
    values = tuple(averages[w] / base for w in weeks)
    return WeeklySeries(weeks, values, baseline_week)


def day_profiles_normalized(
    series: HourlySeries, days: Sequence[_dt.date]
) -> Dict[_dt.date, np.ndarray]:
    """Fig 2a transform: hourly profiles of selected days, jointly
    normalized by the maximum hourly value across those days."""
    if not days:
        raise ValueError("at least one day is required")
    profiles = {day: series.day_values(day) for day in days}
    peak = max(float(v.max()) for v in profiles.values())
    if peak <= 0:
        raise ValueError("selected days carry no traffic")
    return {day: values / peak for day, values in profiles.items()}


def week_hourly_normalized(
    series: HourlySeries, weeks: Mapping[str, timebase.Week]
) -> Dict[str, HourlySeries]:
    """Fig 3a transform: per-week hourly series normalized by each
    week's own minimum hourly volume."""
    return {
        label: series.slice_week(week).normalize_by_min()
        for label, week in weeks.items()
    }


def week_daypattern_normalized(
    series: HourlySeries,
    weeks: Mapping[str, timebase.Week],
    region: timebase.Region,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig 3b transform: average 24-hour workday and weekend profiles
    per week, normalized by the global minimum across all weeks.

    Returns ``{week label: {"workday"|"weekend": 24 values}}``.
    """
    profiles: Dict[str, Dict[str, np.ndarray]] = {}
    all_values: List[float] = []
    for label, week in weeks.items():
        buckets: Dict[str, List[np.ndarray]] = {"workday": [], "weekend": []}
        for day, values in series.slice_week(week).iter_days():
            kind = (
                "weekend"
                if timebase.behaves_like_weekend(day, region)
                else "workday"
            )
            buckets[kind].append(values)
        profiles[label] = {
            kind: np.mean(vals, axis=0)
            for kind, vals in buckets.items()
            if vals
        }
        for arr in profiles[label].values():
            all_values.extend(arr.tolist())
    minimum = min(v for v in all_values if v > 0)
    return {
        label: {kind: arr / minimum for kind, arr in per_week.items()}
        for label, per_week in profiles.items()
    }


@dataclass(frozen=True)
class GrowthSummary:
    """§3.1 growth numbers for one vantage point."""

    vantage: str
    stage1_growth: float  # (stage1 - base) / base
    stage2_growth: float
    stage3_growth: float
    peak_growth: float  # growth of the peak hourly volume, stage1 vs base
    min_growth: float  # growth of the minimum hourly volume

    def as_percentages(self) -> Dict[str, float]:
        """Growth values in percent, rounded to one decimal."""
        return {
            "stage1": round(self.stage1_growth * 100.0, 1),
            "stage2": round(self.stage2_growth * 100.0, 1),
            "stage3": round(self.stage3_growth * 100.0, 1),
            "peak": round(self.peak_growth * 100.0, 1),
            "min": round(self.min_growth * 100.0, 1),
        }


def growth_summary(
    vantage: str,
    series: HourlySeries,
    weeks: Optional[Mapping[str, timebase.Week]] = None,
) -> GrowthSummary:
    """Compute the §3.1 before/after growth percentages.

    ``weeks`` defaults to the paper's macro weeks (base / stage1 /
    stage2 / stage3).
    """
    weeks = dict(weeks or timebase.MACRO_WEEKS)
    for required in ("base", "stage1", "stage2", "stage3"):
        if required not in weeks:
            raise ValueError(f"missing analysis week {required!r}")
    sliced = {label: series.slice_week(week) for label, week in weeks.items()}
    base_total = sliced["base"].total()
    base_peak = float(sliced["base"].values.max())
    base_min = float(sliced["base"].values.min())
    return GrowthSummary(
        vantage=vantage,
        stage1_growth=sliced["stage1"].total() / base_total - 1.0,
        stage2_growth=sliced["stage2"].total() / base_total - 1.0,
        stage3_growth=sliced["stage3"].total() / base_total - 1.0,
        peak_growth=float(sliced["stage1"].values.max()) / base_peak - 1.0,
        min_growth=float(sliced["stage1"].values.min()) / base_min - 1.0,
    )
