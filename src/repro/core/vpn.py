"""VPN traffic classification (§6, Fig 10).

Two classifiers:

* **Port-based** — flows on the well-known VPN ports (IPsec 500/4500,
  OpenVPN 1194, L2TP 1701, PPTP 1723, on both TCP and UDP).
* **Domain-based** — TCP/443 flows to addresses of ``*vpn*`` domains
  mined from the domain corpus, after eliminating candidates whose
  addresses match their zone's ``www`` host (shared-IP web servers).

The paper's finding: the port-based view barely moves, the domain-based
view grows by more than 200% during working hours — port-based VPN
identification vastly undercounts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Set, Tuple

import numpy as np

from repro import timebase
from repro.dns.corpus import DNSCorpus
from repro.dns.names import has_vpn_label, www_variant
from repro.flows.record import PROTO_TCP, PROTO_UDP
from repro.flows.table import FlowTable

#: §6's well-known VPN ports.
VPN_PORTS: FrozenSet[int] = frozenset({500, 1194, 1701, 1723, 4500})


def port_based_mask(flows: FlowTable) -> np.ndarray:
    """Flows classified as VPN by well-known port (TCP and UDP)."""
    ports = flows.service_ports()
    protos = flows.column("proto")
    on_port = np.isin(ports, np.asarray(sorted(VPN_PORTS)))
    transport = np.isin(protos, (PROTO_TCP, PROTO_UDP))
    return on_port & transport


@dataclass(frozen=True)
class VPNCandidates:
    """Result of the domain-mining step."""

    candidate_domains: Tuple[str, ...]
    candidate_ips: FrozenSet[int]
    eliminated_shared: FrozenSet[int]  # dropped by the www check

    @property
    def n_candidates(self) -> int:
        """Number of surviving candidate addresses."""
        return len(self.candidate_ips)


def mine_vpn_candidates(
    corpus: DNSCorpus, eliminate_www_shared: bool = True
) -> VPNCandidates:
    """§6 candidate mining over the domain corpus.

    1. collect domains with a ``*vpn*`` label left of the public suffix,
    2. resolve them to addresses,
    3. resolve each zone's ``www`` sibling and drop candidate addresses
       that match it (skippable via ``eliminate_www_shared`` for the
       ablation).
    """
    domains = [d for d in corpus.all_domains() if has_vpn_label(d)]
    candidate_ips: Set[int] = set()
    eliminated: Set[int] = set()
    for domain in domains:
        addresses = set(corpus.resolve(domain))
        if not addresses:
            continue
        if eliminate_www_shared:
            www_addresses = set(corpus.resolve(www_variant(domain)))
            shared = addresses & www_addresses
            eliminated |= shared
            addresses -= shared
        candidate_ips |= addresses
    return VPNCandidates(
        candidate_domains=tuple(domains),
        candidate_ips=frozenset(candidate_ips),
        eliminated_shared=frozenset(eliminated),
    )


def domain_based_mask(
    flows: FlowTable, candidates: VPNCandidates
) -> np.ndarray:
    """TCP/443 flows to/from a candidate VPN address."""
    if not candidates.candidate_ips:
        return np.zeros(len(flows), dtype=bool)
    wanted = np.asarray(sorted(candidates.candidate_ips), dtype=np.uint32)
    on_443 = (flows.service_ports() == 443) & (
        flows.column("proto") == PROTO_TCP
    )
    to_candidate = np.isin(flows.column("src_ip"), wanted) | np.isin(
        flows.column("dst_ip"), wanted
    )
    return on_443 & to_candidate


@dataclass(frozen=True)
class VPNWeekPattern:
    """Fig 10's per-week data: hourly workday/weekend traffic for both
    identification methods, jointly normalized."""

    week_label: str
    port_workday: np.ndarray
    port_weekend: np.ndarray
    domain_workday: np.ndarray
    domain_weekend: np.ndarray


def _mean_profiles(
    flows: FlowTable, week: timebase.Week, region: timebase.Region
) -> Tuple[np.ndarray, np.ndarray]:
    start, stop = week.hour_range()
    hourly = flows.hourly_bytes(start, stop).astype(np.float64)
    days = hourly.reshape(7, 24)
    workdays, weekends = [], []
    for i, day in enumerate(week.days()):
        if timebase.behaves_like_weekend(day, region):
            weekends.append(days[i])
        else:
            workdays.append(days[i])
    workday = np.mean(workdays, axis=0) if workdays else np.zeros(24)
    weekend = np.mean(weekends, axis=0) if weekends else np.zeros(24)
    return workday, weekend


def vpn_week_patterns(
    flows: FlowTable,
    weeks: Mapping[str, timebase.Week],
    region: timebase.Region,
    candidates: VPNCandidates,
) -> Dict[str, VPNWeekPattern]:
    """Fig 10: per-week hourly VPN traffic, both methods.

    All series are normalized by the joint maximum, preserving relative
    levels between methods and weeks.
    """
    port_flows = flows.filter(port_based_mask(flows))
    domain_flows = flows.filter(domain_based_mask(flows, candidates))
    raw: Dict[str, Tuple[np.ndarray, ...]] = {}
    peak = 0.0
    for label, week in weeks.items():
        p_wd, p_we = _mean_profiles(port_flows, week, region)
        d_wd, d_we = _mean_profiles(domain_flows, week, region)
        raw[label] = (p_wd, p_we, d_wd, d_we)
        peak = max(
            peak, p_wd.max(), p_we.max(), d_wd.max(), d_we.max()
        )
    if peak <= 0:
        peak = 1.0
    return {
        label: VPNWeekPattern(
            week_label=label,
            port_workday=arrays[0] / peak,
            port_weekend=arrays[1] / peak,
            domain_workday=arrays[2] / peak,
            domain_weekend=arrays[3] / peak,
        )
        for label, arrays in raw.items()
    }


@dataclass(frozen=True)
class VPNGrowth:
    """Working-hours growth between the base week and a later week."""

    port_based: float
    domain_based: float
    port_based_weekend: float
    domain_based_weekend: float


def vpn_growth(
    patterns: Mapping[str, VPNWeekPattern],
    base_label: str,
    stage_label: str,
    working_hours: Tuple[int, int] = (9, 17),
) -> VPNGrowth:
    """§6's quantified claims from the Fig 10 patterns."""
    base = patterns[base_label]
    stage = patterns[stage_label]
    h0, h1 = working_hours

    def _growth(before: np.ndarray, after: np.ndarray, clip: slice) -> float:
        b = float(before[clip].mean())
        a = float(after[clip].mean())
        return (a / b - 1.0) if b > 0 else 0.0

    hours = slice(h0, h1)
    full = slice(0, 24)
    return VPNGrowth(
        port_based=_growth(base.port_workday, stage.port_workday, hours),
        domain_based=_growth(base.domain_workday, stage.domain_workday, hours),
        port_based_weekend=_growth(base.port_weekend, stage.port_weekend, full),
        domain_based_weekend=_growth(
            base.domain_weekend, stage.domain_weekend, full
        ),
    )
