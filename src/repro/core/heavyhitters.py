"""Streaming heavy-hitter detection (Space-Saving).

Fig 7 ranks transport ports and §3.2 ranks source ASes by byte volume.
Over billions of flows the exact per-key tally is cheap for ports
(bounded key space) but not for addresses or AS pairs; the standard
answer is the Space-Saving algorithm (Metwally et al.): maintain ``k``
counters, evict the minimum on overflow, and inherit its count as the
new key's overestimation bound.

Guarantees: with ``k`` counters over a total weight ``N``, every
reported count overestimates the true count by at most ``N / k``, and
any key with true weight above ``N / k`` is guaranteed to be present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.flows import groupby
from repro.flows.table import FlowTable


@dataclass(frozen=True)
class HeavyHitter:
    """One reported key with its count bounds."""

    key: int
    count: float  # upper bound on the true weight
    error: float  # overestimation bound (count - error <= true)

    @property
    def guaranteed(self) -> float:
        """Lower bound on the key's true weight."""
        return self.count - self.error


class SpaceSaving:
    """Fixed-memory top-k weight tracker."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self._k = k
        self._counts: Dict[int, float] = {}
        self._errors: Dict[int, float] = {}
        self._total = 0.0

    @property
    def capacity(self) -> int:
        """The number of counters (k)."""
        return self._k

    @property
    def total_weight(self) -> float:
        """Total weight observed so far."""
        return self._total

    @property
    def error_bound(self) -> float:
        """The global overestimation bound N / k."""
        return self._total / self._k

    def update(self, key: int, weight: float = 1.0) -> None:
        """Add ``weight`` for ``key``."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self._total += weight
        key = int(key)
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self._k:
            self._counts[key] = weight
            self._errors[key] = 0.0
            return
        # Evict the minimum; the newcomer inherits its count as error.
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def update_many(
        self, keys: np.ndarray, weights: np.ndarray
    ) -> None:
        """Batch update: pre-aggregates per key, then applies once each.

        Pre-aggregation preserves the algorithm's guarantees (it is
        equivalent to an adversarial ordering of the stream) and makes
        numpy-sized batches cheap.
        """
        keys = np.asarray(keys)
        weights = np.asarray(weights)
        if keys.shape != weights.shape:
            raise ValueError("keys and weights must align")
        # Sums accumulate in the weights' own dtype: int64 byte
        # counters pre-aggregate exactly (float64 bincount weights
        # round above 2**53) before the tracker's float arithmetic.
        uniq, sums = groupby.group_sums(keys, weights)
        for key, weight in zip(uniq.tolist(), sums.tolist()):
            self.update(int(key), float(weight))

    def top(self, n: int) -> List[HeavyHitter]:
        """The ``n`` largest tracked keys, descending by count."""
        if n < 1:
            raise ValueError("n must be at least 1")
        ranked = sorted(
            self._counts.items(), key=lambda kv: (-kv[1], kv[0])
        )[:n]
        return [
            HeavyHitter(key=key, count=count, error=self._errors[key])
            for key, count in ranked
        ]

    def guaranteed_hitters(self, threshold_fraction: float) -> List[int]:
        """Keys *guaranteed* to exceed a fraction of the total weight."""
        if not 0.0 < threshold_fraction < 1.0:
            raise ValueError("threshold_fraction must be in (0, 1)")
        cutoff = self._total * threshold_fraction
        return sorted(
            key
            for key, count in self._counts.items()
            if count - self._errors[key] > cutoff
        )


def top_ports_streaming(
    chunks: Iterable[FlowTable], k: int = 64, n: int = 12
) -> List[HeavyHitter]:
    """Fig 7's top-port ranking over a chunked stream of flows."""
    sketch = SpaceSaving(k)
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        sketch.update_many(
            chunk.service_ports(), chunk.column("n_bytes")
        )
    return sketch.top(n)


def top_sources_streaming(
    chunks: Iterable[FlowTable], k: int = 256, n: int = 15
) -> List[HeavyHitter]:
    """§3.2's top source-AS ranking over a chunked stream of flows."""
    sketch = SpaceSaving(k)
    for chunk in chunks:
        if len(chunk) == 0:
            continue
        sketch.update_many(
            chunk.column("src_asn"), chunk.column("n_bytes")
        )
    return sketch.top(n)
