"""The paper's analysis pipeline.

One module per figure family:

* :mod:`repro.core.aggregate` — volume normalization and weekly/hourly
  series (Figs 1, 2a, 3; §3.1 growth numbers),
* :mod:`repro.core.patterns` — workday/weekend-like day classification
  (Figs 2b, 2c),
* :mod:`repro.core.hypergiants` — hypergiant vs. other-AS growth (Fig 4),
* :mod:`repro.core.linkutil` — link-utilization ECDFs (Fig 5),
* :mod:`repro.core.remotework` — per-AS residential shift scatter (Fig 6),
* :mod:`repro.core.ports` — top-port diurnal analysis (Fig 7),
* :mod:`repro.core.appclass` — application-class filters and heatmaps
  (Table 1, Figs 8, 9),
* :mod:`repro.core.vpn` — port- and domain-based VPN classification
  (Fig 10),
* :mod:`repro.core.edu` — educational-network analysis (Figs 11, 12).

Every function here is a pure function of flow tables / hourly series;
none reads generator ground truth.
"""
