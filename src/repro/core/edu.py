"""Educational-network analysis (§7, Figs 11, 12, Appendix B).

The EDU flows are captured at the network border; every flow has
exactly one endpoint inside the academic network.  Three analyses:

* **Volume** (Fig 11a): normalized daily totals of three key weeks
  (base / transition / online-lecturing), Thursday-to-Wednesday.
* **Directionality** (Fig 11b): daily ingress/egress byte ratio — bytes
  flowing *into* the network vs. out of it.
* **Connections** (Fig 12): daily connection counts per Appendix B
  traffic class, split into incoming / outgoing / unknown by the side
  holding the well-known service port; growth is reported relative to
  the capture start.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import timebase
from repro.flows.record import PROTO_ESP, PROTO_GRE, PROTO_TCP, PROTO_UDP
from repro.flows.table import FlowTable

#: Ephemeral-port boundary used for connection-direction labeling.
_EPHEMERAL = 49152

#: Appendix B traffic classes: {class: ((proto, port), ...)}.
#: ``proto = 0`` means the bare protocol matches regardless of port
#: (ESP/GRE under VPN).
APPENDIX_B_CLASSES: Mapping[str, Tuple[Tuple[int, int], ...]] = {
    "web": (
        (PROTO_TCP, 80), (PROTO_TCP, 443), (PROTO_UDP, 443),
        (PROTO_TCP, 8000), (PROTO_TCP, 8080),
    ),
    "quic": ((PROTO_UDP, 443),),
    "push": ((PROTO_TCP, 5223), (PROTO_TCP, 5228)),
    "email": tuple(
        (PROTO_TCP, p) for p in (25, 110, 143, 465, 587, 993, 995)
    ),
    "vpn": (
        (PROTO_UDP, 500), (PROTO_ESP, 0), (PROTO_GRE, 0),
        (PROTO_TCP, 1194), (PROTO_UDP, 1194), (PROTO_UDP, 4500),
    ),
    "ssh": ((PROTO_TCP, 22),),
    "remote-desktop": (
        (PROTO_TCP, 1494), (PROTO_UDP, 1494), (PROTO_TCP, 3389),
        (PROTO_TCP, 5938), (PROTO_UDP, 5938),
    ),
    "spotify": ((PROTO_TCP, 4070),),
}

#: Spotify is also matched by AS number (Appendix B: "TCP:4070 or
#: ASN8403").
SPOTIFY_ASN = 8403


def _internal_masks(
    flows: FlowTable, internal_asns: FrozenSet[int]
) -> Tuple[np.ndarray, np.ndarray]:
    wanted = np.asarray(sorted(internal_asns), dtype=np.int64)
    src_internal = np.isin(flows.column("src_asn"), wanted)
    dst_internal = np.isin(flows.column("dst_asn"), wanted)
    return src_internal, dst_internal


def ingress_egress_bytes(
    flows: FlowTable, internal_asns: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-flow byte attribution: (ingress mask, egress mask).

    Ingress bytes flow toward an internal endpoint; egress bytes leave
    it.  Flows with both or neither endpoint internal are ignored (the
    border only sees one internal side).
    """
    src_internal, dst_internal = _internal_masks(
        flows, frozenset(int(a) for a in internal_asns)
    )
    ingress = dst_internal & ~src_internal
    egress = src_internal & ~dst_internal
    return ingress, egress


@dataclass(frozen=True)
class EduWeekVolumes:
    """Fig 11 data for one analysis week (days Thursday..Wednesday)."""

    label: str
    days: Tuple[_dt.date, ...]
    total: np.ndarray  # normalized daily totals
    in_out_ratio: np.ndarray  # raw ingress/egress ratio per day


def weekly_volumes(
    flows: FlowTable,
    weeks: Mapping[str, timebase.Week],
    internal_asns: Sequence[int],
) -> Dict[str, EduWeekVolumes]:
    """Fig 11a + 11b: normalized daily volume and in/out ratio per week.

    Totals are normalized jointly by the maximum daily volume across
    all weeks (so the base week's shape and the lockdown drop are both
    visible on one scale).
    """
    ingress_mask, egress_mask = ingress_egress_bytes(flows, internal_asns)
    hours = flows.column("hour")
    n_bytes = flows.column("n_bytes").astype(np.float64)
    raw: Dict[str, Tuple[np.ndarray, np.ndarray, Tuple[_dt.date, ...]]] = {}
    peak = 0.0
    for label, week in weeks.items():
        days = tuple(week.days())
        totals = np.zeros(7)
        ratios = np.zeros(7)
        for i, day in enumerate(days):
            start = timebase.hour_index(day, 0)
            in_day = (hours >= start) & (hours < start + 24)
            day_in = float(n_bytes[in_day & ingress_mask].sum())
            day_out = float(n_bytes[in_day & egress_mask].sum())
            totals[i] = day_in + day_out
            ratios[i] = day_in / day_out if day_out > 0 else np.inf
        raw[label] = (totals, ratios, days)
        peak = max(peak, float(totals.max()))
    if peak <= 0:
        raise ValueError("EDU flows carry no traffic in the given weeks")
    return {
        label: EduWeekVolumes(
            label=label, days=days, total=totals / peak, in_out_ratio=ratios
        )
        for label, (totals, ratios, days) in raw.items()
    }


def workday_drop(
    volumes: Mapping[str, EduWeekVolumes],
    base_label: str = "base",
    stage_label: str = "online-lecturing",
    region: timebase.Region = timebase.Region.SOUTHERN_EUROPE,
) -> float:
    """Maximum workday volume decrease, stage vs. base (§7: up to 55%).

    Compares same weekdays between the two weeks and returns the largest
    relative drop observed on a workday.
    """
    base = volumes[base_label]
    stage = volumes[stage_label]
    drops = []
    for i, day in enumerate(base.days):
        if timebase.behaves_like_weekend(day, region):
            continue
        if timebase.behaves_like_weekend(stage.days[i], region):
            continue
        if base.total[i] > 0:
            drops.append(1.0 - stage.total[i] / base.total[i])
    if not drops:
        raise ValueError("weeks share no comparable workdays")
    return max(drops)


# ---------------------------------------------------------------------------
# Connection-level analysis (Fig 12).
# ---------------------------------------------------------------------------


def connection_direction(
    flows: FlowTable, internal_asns: Sequence[int]
) -> np.ndarray:
    """Per-flow connection direction label.

    ``1`` incoming (service port inside the EDU network), ``-1``
    outgoing (service port outside), ``0`` unknown (no well-known port
    on either side — P2P-like applications, marginal protocols).
    Port-less protocols (GRE/ESP) direct toward the internal endpoint,
    since the academic network hosts the tunnel concentrators.
    """
    src_internal, dst_internal = _internal_masks(
        flows, frozenset(int(a) for a in internal_asns)
    )
    src_ports = flows.column("src_port")
    dst_ports = flows.column("dst_port")
    protos = flows.column("proto")
    src_known = (src_ports > 0) & (src_ports < _EPHEMERAL)
    dst_known = (dst_ports > 0) & (dst_ports < _EPHEMERAL)
    portless = np.isin(protos, (PROTO_GRE, PROTO_ESP))
    direction = np.zeros(len(flows), dtype=np.int8)
    # Service inside: the known port sits on the internal endpoint.
    service_in = (src_internal & src_known & ~dst_known) | (
        dst_internal & dst_known & ~src_known
    )
    service_out = (src_internal & dst_known & ~src_known) | (
        dst_internal & src_known & ~dst_known
    )
    direction[service_in] = 1
    direction[service_out] = -1
    direction[portless & dst_internal] = 1
    direction[portless & src_internal] = 1
    return direction


def class_mask(flows: FlowTable, class_name: str) -> np.ndarray:
    """Appendix B class membership mask."""
    try:
        pairs = APPENDIX_B_CLASSES[class_name]
    except KeyError:
        raise ValueError(f"unknown traffic class: {class_name!r}") from None
    protos = flows.column("proto")
    service = flows.service_ports()
    mask = np.zeros(len(flows), dtype=bool)
    for proto, port in pairs:
        if proto in (PROTO_GRE, PROTO_ESP):
            mask |= protos == proto
        else:
            mask |= (protos == proto) & (service == port)
    if class_name == "spotify":
        mask |= (flows.column("src_asn") == SPOTIFY_ASN) | (
            flows.column("dst_asn") == SPOTIFY_ASN
        )
    return mask


@dataclass(frozen=True)
class DailyConnections:
    """Daily connection counts for one (class, direction) series."""

    class_name: str
    direction: str  # "in" | "out" | "all"
    days: Tuple[_dt.date, ...]
    counts: np.ndarray

    def relative_to_first(self) -> np.ndarray:
        """Fig 12's y-axis: daily counts relative to the first day."""
        first = self.counts[0]
        if first <= 0:
            raise ValueError("first day has no connections")
        return self.counts / first

    def median_before_after(
        self, split: _dt.date
    ) -> Tuple[float, float]:
        """Median daily connections before vs. from ``split`` on."""
        before = [
            c for d, c in zip(self.days, self.counts) if d < split
        ]
        after = [c for d, c in zip(self.days, self.counts) if d >= split]
        if not before or not after:
            raise ValueError("split date outside the capture period")
        return float(np.median(before)), float(np.median(after))

    def growth_after(self, split: _dt.date) -> float:
        """Ratio of post-split to pre-split median daily connections."""
        before, after = self.median_before_after(split)
        if before <= 0:
            raise ValueError("no connections before the split date")
        return after / before


def daily_connections(
    flows: FlowTable,
    internal_asns: Sequence[int],
    class_name: str,
    direction: str,
    start_day: _dt.date,
    end_day: _dt.date,
) -> DailyConnections:
    """Daily connection counts of one class in one direction."""
    if direction not in ("in", "out", "all"):
        raise ValueError("direction must be 'in', 'out', or 'all'")
    mask = class_mask(flows, class_name)
    if direction != "all":
        labels = connection_direction(flows, internal_asns)
        mask = mask & (labels == (1 if direction == "in" else -1))
    selected = flows.filter(mask)
    start = timebase.hour_index(start_day, 0)
    stop = timebase.hour_index(end_day, 23) + 1
    hourly = selected.hourly_connections(start, stop)
    daily = hourly.reshape(-1, 24).sum(axis=1).astype(np.float64)
    days = tuple(timebase.iter_days(start_day, end_day))
    return DailyConnections(
        class_name=class_name,
        direction=direction,
        days=days,
        counts=daily,
    )


def hourly_connection_profile(
    flows: FlowTable,
    internal_asns: Sequence[int],
    class_name: str,
    direction: str,
    start_day: _dt.date,
    end_day: _dt.date,
    src_asns: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Mean connections per hour-of-day for one class and direction.

    ``src_asns`` restricts to connections originating from a given set
    of client ASes — the §7 origin analysis ("Latin American users
    start connecting at 5 pm, presenting a peak from midnight until
    7 am").
    """
    mask = class_mask(flows, class_name)
    if direction != "all":
        labels = connection_direction(flows, internal_asns)
        mask = mask & (labels == (1 if direction == "in" else -1))
    if src_asns is not None:
        wanted = np.asarray(sorted(int(a) for a in src_asns), dtype=np.int64)
        mask = mask & (
            np.isin(flows.column("src_asn"), wanted)
            | np.isin(flows.column("dst_asn"), wanted)
        )
    selected = flows.filter(mask)
    start = timebase.hour_index(start_day, 0)
    stop = timebase.hour_index(end_day, 23) + 1
    hourly = selected.hourly_connections(start, stop).astype(np.float64)
    return hourly.reshape(-1, 24).mean(axis=0)


def out_of_hours_share(profile: np.ndarray,
                       night_hours: Tuple[int, int] = (21, 7)) -> float:
    """Fraction of connections landing between 9 pm and 7 am.

    §7 reports an 11-24% traffic increase in these hours after the
    lockdown, driven by overseas students in other time zones.
    """
    if profile.shape != (24,):
        raise ValueError("profile must have 24 hourly values")
    h0, h1 = night_hours
    night = np.concatenate([profile[h0:], profile[:h1]])
    total = profile.sum()
    if total <= 0:
        raise ValueError("profile carries no connections")
    return float(night.sum() / total)


@dataclass(frozen=True)
class DirectionalitySummary:
    """§7's headline connection statistics."""

    unknown_fraction: float  # fraction of flows with unknown direction
    incoming_growth: float  # post/pre median daily incoming connections
    outgoing_growth: float  # post/pre median daily outgoing connections
    total_growth: float


def directionality_summary(
    flows: FlowTable,
    internal_asns: Sequence[int],
    start_day: _dt.date,
    end_day: _dt.date,
    split: _dt.date,
) -> DirectionalitySummary:
    """Connection directionality before/after the lockdown (§7).

    Expectations from the paper: ~39% of flows undeterminable, median
    incoming connections double, outgoing connections nearly halve, and
    the total grows by ~24%.
    """
    labels = connection_direction(flows, internal_asns)
    unknown_fraction = float(np.mean(labels == 0))
    start = timebase.hour_index(start_day, 0)
    stop = timebase.hour_index(end_day, 23) + 1
    days = tuple(timebase.iter_days(start_day, end_day))
    growths = {}
    for name, mask in (
        ("in", labels == 1),
        ("out", labels == -1),
        ("all", np.ones(len(flows), dtype=bool)),
    ):
        hourly = flows.filter(mask).hourly_connections(start, stop)
        daily = hourly.reshape(-1, 24).sum(axis=1).astype(np.float64)
        series = DailyConnections(
            class_name="total", direction=name, days=days, counts=daily
        )
        growths[name] = series.growth_after(split)
    return DirectionalitySummary(
        unknown_fraction=unknown_fraction,
        incoming_growth=growths["in"],
        outgoing_growth=growths["out"],
        total_growth=growths["all"],
    )
