"""Raw port-level application analysis (§4, Fig 7).

For three analysis weeks, aggregate traffic per transport key
(``PROTO/port``, with GRE/ESP as bare protocol names), keep per-hour
statistics split into one aggregate workday and one aggregate weekend
pattern, and report the top ports after omitting TCP/443 and TCP/80
(which dominate but barely change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import timebase
from repro.flows.table import FlowTable

#: The two dominant web keys omitted from Fig 7 for readability.
OMITTED_KEYS = ("TCP/443", "TCP/80")

#: Number of ports shown in Fig 7 (the "top 3-12").
DEFAULT_TOP_N = 10


def top_ports(
    flows: FlowTable,
    n: int = DEFAULT_TOP_N,
    omit: Sequence[str] = OMITTED_KEYS,
) -> List[str]:
    """The top-``n`` transport keys by byte volume, after omissions."""
    ranked = flows.top_transport_keys(n + len(omit))
    keys = [key for key, _ in ranked if key not in omit]
    return keys[:n]


@dataclass(frozen=True)
class PortWeekPattern:
    """Hour-of-day traffic for one port in one week.

    ``workday``/``weekend`` are 24-value arrays of the average byte
    volume in that hour across the week's workdays resp. weekend days.
    """

    key: str
    week_label: str
    workday: np.ndarray
    weekend: np.ndarray


def _hour_of_day_profile(
    flows: FlowTable,
    week: timebase.Week,
    region: timebase.Region,
) -> Tuple[np.ndarray, np.ndarray]:
    """(workday, weekend) mean per-hour byte profiles for one week."""
    start, stop = week.hour_range()
    hourly = flows.hourly_bytes(start, stop).astype(np.float64)
    workdays: List[np.ndarray] = []
    weekends: List[np.ndarray] = []
    for i, day in enumerate(week.days()):
        day_values = hourly[i * 24 : (i + 1) * 24]
        if timebase.behaves_like_weekend(day, region):
            weekends.append(day_values)
        else:
            workdays.append(day_values)
    workday = np.mean(workdays, axis=0) if workdays else np.zeros(24)
    weekend = np.mean(weekends, axis=0) if weekends else np.zeros(24)
    return workday, weekend


def port_patterns(
    flows: FlowTable,
    weeks: Mapping[str, timebase.Week],
    region: timebase.Region,
    keys: Optional[Sequence[str]] = None,
    top_n: int = DEFAULT_TOP_N,
) -> Dict[str, List[PortWeekPattern]]:
    """Fig 7: per-port hour-of-day patterns for each analysis week.

    ``keys`` defaults to the top ports over all three weeks combined
    (the paper plots "the top ports of all three weeks").  Values are
    normalized jointly per port across weeks, so growth between weeks
    is directly visible.
    """
    if keys is None:
        keys = top_ports(flows, top_n)
    labels = flows.transport_keys()
    patterns: Dict[str, List[PortWeekPattern]] = {}
    for key in keys:
        sub = flows.filter(labels == key)
        per_week: List[PortWeekPattern] = []
        peak = 0.0
        raw: List[Tuple[str, np.ndarray, np.ndarray]] = []
        for label, week in weeks.items():
            workday, weekend = _hour_of_day_profile(sub, week, region)
            raw.append((label, workday, weekend))
            peak = max(peak, float(workday.max()), float(weekend.max()))
        if peak <= 0:
            peak = 1.0
        for label, workday, weekend in raw:
            per_week.append(
                PortWeekPattern(
                    key=key,
                    week_label=label,
                    workday=workday / peak,
                    weekend=weekend / peak,
                )
            )
        patterns[key] = per_week
    return patterns


@dataclass(frozen=True)
class PortGrowth:
    """Working-hours growth of one port between two weeks."""

    key: str
    workday_growth: float  # (later - base) / base over working hours
    weekend_growth: float
    base_share: float  # port's share of total base-week bytes


def port_growth(
    flows: FlowTable,
    base_week: timebase.Week,
    later_week: timebase.Week,
    region: timebase.Region,
    keys: Optional[Sequence[str]] = None,
    working_hours: Tuple[int, int] = (9, 17),
) -> Dict[str, PortGrowth]:
    """Quantified §4 statements (QUIC +30-80%, TCP/993 +60%, ...).

    Growth compares mean per-hour volume inside ``working_hours`` on
    workdays (and the full day on weekends) between the two weeks.
    """
    if keys is None:
        keys = top_ports(flows)
    labels = flows.transport_keys()
    base_start, base_stop = base_week.hour_range()
    base_total = float(
        flows.hourly_bytes(base_start, base_stop).sum()
    )
    results: Dict[str, PortGrowth] = {}
    h0, h1 = working_hours
    for key in keys:
        sub = flows.filter(labels == key)
        values = {}
        for label, week in (("base", base_week), ("later", later_week)):
            workday, weekend = _hour_of_day_profile(sub, week, region)
            values[label] = (
                float(workday[h0:h1].mean()),
                float(weekend.mean()),
            )
        base_wd, base_we = values["base"]
        later_wd, later_we = values["later"]
        start, stop = base_week.hour_range()
        share = (
            float(sub.hourly_bytes(start, stop).sum()) / base_total
            if base_total > 0
            else 0.0
        )
        results[key] = PortGrowth(
            key=key,
            workday_growth=(later_wd / base_wd - 1.0) if base_wd > 0 else 0.0,
            weekend_growth=(later_we / base_we - 1.0) if base_we > 0 else 0.0,
            base_share=share,
        )
    return results
