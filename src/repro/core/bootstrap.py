"""Bootstrap confidence intervals for growth estimates.

The paper reports point growth factors (+20%, +30%, ...).  Our
synthetic traces carry day-level noise, so a single week-over-week
ratio has sampling variability; this module quantifies it with a
day-block bootstrap: resample whole days (the natural dependence unit
of diurnal traffic) with replacement within each week and recompute the
growth ratio.

Used by tests to assert that reported growth differences (e.g. ISP
stage-3 vs IXP-CE stage-3) are larger than the noise, not artifacts of
one realization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import timebase
from repro.series import HourlySeries


@dataclass(frozen=True)
class GrowthCI:
    """A growth estimate with a bootstrap confidence interval."""

    point: float  # plain stage/base - 1
    lower: float
    upper: float
    level: float  # e.g. 0.95

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        """Interval width."""
        return self.upper - self.lower

    def excludes_zero(self) -> bool:
        """Whether the growth is distinguishable from 'no change'."""
        return self.lower > 0.0 or self.upper < 0.0


def _daily_totals(series: HourlySeries, week: timebase.Week) -> np.ndarray:
    sliced = series.slice_week(week)
    return sliced.values.reshape(7, 24).sum(axis=1)


def growth_ci(
    series: HourlySeries,
    base_week: timebase.Week,
    stage_week: timebase.Week,
    n_resamples: int = 500,
    level: float = 0.95,
    seed: int = 0,
) -> GrowthCI:
    """Day-block bootstrap CI for the stage/base volume growth.

    Days are resampled with replacement independently within each week;
    each resample's growth is the ratio of resampled weekly totals.
    Percentile interval at ``level``.
    """
    if n_resamples < 10:
        raise ValueError("need at least 10 resamples")
    if not 0.5 < level < 1.0:
        raise ValueError("level must be in (0.5, 1.0)")
    base_days = _daily_totals(series, base_week)
    stage_days = _daily_totals(series, stage_week)
    if base_days.sum() <= 0:
        raise ValueError("base week carries no traffic")
    point = float(stage_days.sum() / base_days.sum() - 1.0)
    rng = np.random.default_rng(seed)
    base_samples = base_days[
        rng.integers(0, 7, size=(n_resamples, 7))
    ].sum(axis=1)
    stage_samples = stage_days[
        rng.integers(0, 7, size=(n_resamples, 7))
    ].sum(axis=1)
    ratios = stage_samples / base_samples - 1.0
    alpha = (1.0 - level) / 2.0
    lower, upper = np.quantile(ratios, [alpha, 1.0 - alpha])
    return GrowthCI(
        point=point, lower=float(lower), upper=float(upper), level=level
    )


def growth_difference_significant(
    series_a: HourlySeries,
    series_b: HourlySeries,
    base_week: timebase.Week,
    stage_week: timebase.Week,
    n_resamples: int = 500,
    level: float = 0.95,
    seed: int = 0,
) -> Tuple[bool, GrowthCI, GrowthCI]:
    """Whether two vantages' growth factors differ beyond the noise.

    Conservative criterion: non-overlapping percentile intervals.
    Returns (significant, CI of a, CI of b).
    """
    ci_a = growth_ci(series_a, base_week, stage_week, n_resamples, level, seed)
    ci_b = growth_ci(
        series_b, base_week, stage_week, n_resamples, level, seed + 1
    )
    significant = ci_a.upper < ci_b.lower or ci_b.upper < ci_a.lower
    return significant, ci_a, ci_b
