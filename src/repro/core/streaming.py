"""Streaming (single-pass) trace aggregation.

The paper's analyses run "on servers located at the premises" of the
vantage points over billions of flows; nothing may require the whole
trace in memory.  :class:`StreamingAggregator` consumes flow tables (or
record batches) incrementally and maintains exactly the running state
the volume analyses need:

* per-hour byte / packet / connection counters,
* per-service-port byte counters,
* per-source-AS byte counters,
* per-hour distinct client addresses via HyperLogLog sketches.

Feeding a trace chunk-by-chunk yields the same hourly byte series as
the batch path, so the analyses of :mod:`repro.core.aggregate` apply
unchanged; distinct-IP series are estimates within the sketch error.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

import repro.obs as obs
from repro.flows import groupby
from repro.flows.groupby import GroupIndex
from repro.flows.hll import HyperLogLog
from repro.flows.table import FlowTable
from repro.series import HourlySeries


class StreamingAggregator:
    """Single-pass aggregation state over a flow stream."""

    def __init__(
        self,
        start_hour: int,
        stop_hour: int,
        hll_precision: int = 12,
        ip_side: str = "dst",
    ):
        if stop_hour <= start_hour:
            raise ValueError("stop_hour must exceed start_hour")
        if ip_side not in ("src", "dst"):
            raise ValueError("ip_side must be 'src' or 'dst'")
        self._start = start_hour
        self._stop = stop_hour
        self._ip_side = ip_side
        n = stop_hour - start_hour
        self._bytes = np.zeros(n, dtype=np.int64)
        self._packets = np.zeros(n, dtype=np.int64)
        self._connections = np.zeros(n, dtype=np.int64)
        self._port_bytes: Dict[int, int] = {}
        self._asn_bytes: Dict[int, int] = {}
        self._hll_precision = hll_precision
        self._ip_sketches: Dict[int, HyperLogLog] = {}
        self._flows_seen = 0

    # -- ingestion ---------------------------------------------------------

    def feed(self, chunk: FlowTable) -> None:
        """Ingest one chunk of flows (any order, any chunking)."""
        registry = obs.get_registry()
        registry.counter("streaming.chunks").inc()
        registry.counter("streaming.flows-offered").inc(len(chunk))
        if len(chunk) == 0:
            return
        hours = chunk.column("hour")
        in_range = (hours >= self._start) & (hours < self._stop)
        if not in_range.any():
            return
        chunk = chunk.filter(in_range)
        rel = chunk.column("hour") - self._start
        # One factorization of the relative hour serves the three
        # hourly accumulators and the per-hour sketch segments;
        # integer-exact sums, unlike float64 bincount weights.
        hour_index = GroupIndex.from_values(rel)
        hours_seen = hour_index.values.astype(np.intp)
        self._bytes[hours_seen] += hour_index.sum(chunk.column("n_bytes"))
        self._packets[hours_seen] += hour_index.sum(
            chunk.column("n_packets")
        )
        self._connections[hours_seen] += hour_index.sum(
            chunk.column("connections")
        )
        port_values, port_sums = groupby.group_sums(
            chunk.service_ports(), chunk.column("n_bytes")
        )
        for key, volume in zip(port_values.tolist(), port_sums.tolist()):
            self._port_bytes[key] = self._port_bytes.get(key, 0) + volume
        asn_values, asn_sums = groupby.group_sums(
            chunk.column("src_asn"), chunk.column("n_bytes")
        )
        for key, volume in zip(asn_values.tolist(), asn_sums.tolist()):
            self._asn_bytes[key] = self._asn_bytes.get(key, 0) + volume
        ips = chunk.column(f"{self._ip_side}_ip")[hour_index.order]
        stops = np.append(hour_index.starts[1:], hour_index.n_rows)
        for rel_hour, start, stop in zip(
            hour_index.values.tolist(),
            hour_index.starts.tolist(),
            stops.tolist(),
        ):
            sketch = self._ip_sketches.get(rel_hour)
            if sketch is None:
                sketch = HyperLogLog(self._hll_precision, salt=7)
                self._ip_sketches[rel_hour] = sketch
            sketch.add_many(ips[start:stop])
        self._flows_seen += len(chunk)
        registry.counter("streaming.flows-ingested").inc(len(chunk))
        if obs.enabled():
            registry.counter("streaming.bytes-aggregated").inc(
                int(chunk.column("n_bytes").sum())
            )

    def feed_stream(
        self, chunks: Iterable[FlowTable]
    ) -> "StreamingAggregator":
        """Ingest an iterable of chunks; returns self for chaining."""
        for chunk in chunks:
            self.feed(chunk)
        return self

    # -- results -------------------------------------------------------------

    @property
    def flows_seen(self) -> int:
        """Number of in-range flows ingested."""
        return self._flows_seen

    def hourly_bytes(self) -> HourlySeries:
        """The per-hour byte series (exact)."""
        return HourlySeries(self._start, self._bytes.astype(np.float64))

    def hourly_connections(self) -> HourlySeries:
        """The per-hour connection series (exact)."""
        return HourlySeries(self._start, self._connections.astype(np.float64))

    def bytes_by_port(self) -> Dict[int, int]:
        """Total bytes per service port (exact)."""
        return dict(self._port_bytes)

    def bytes_by_asn(self) -> Dict[int, int]:
        """Total bytes per source AS (exact)."""
        return dict(self._asn_bytes)

    def distinct_ips_per_hour(self) -> HourlySeries:
        """Estimated distinct addresses per hour (HLL)."""
        values = np.zeros(self._stop - self._start, dtype=np.float64)
        for rel_hour, sketch in self._ip_sketches.items():
            values[rel_hour] = sketch.count()
        return HourlySeries(self._start, values)

    def merge(self, other: "StreamingAggregator") -> "StreamingAggregator":
        """Combine two aggregators over the same window.

        Supports sharded processing: shards feed disjoint chunks and
        merge at the end.
        """
        if (other._start, other._stop) != (self._start, self._stop):
            raise ValueError("aggregators cover different windows")
        if other._ip_side != self._ip_side:
            raise ValueError("aggregators count different IP sides")
        merged = StreamingAggregator(
            self._start, self._stop, self._hll_precision, self._ip_side
        )
        merged._bytes = self._bytes + other._bytes
        merged._packets = self._packets + other._packets
        merged._connections = self._connections + other._connections
        for source in (self._port_bytes, other._port_bytes):
            for key, volume in source.items():
                merged._port_bytes[key] = (
                    merged._port_bytes.get(key, 0) + volume
                )
        for source in (self._asn_bytes, other._asn_bytes):
            for key, volume in source.items():
                merged._asn_bytes[key] = (
                    merged._asn_bytes.get(key, 0) + volume
                )
        for rel_hour in set(self._ip_sketches) | set(other._ip_sketches):
            mine = self._ip_sketches.get(rel_hour)
            theirs = other._ip_sketches.get(rel_hour)
            if mine and theirs:
                merged._ip_sketches[rel_hour] = mine.merge(theirs)
            else:
                source_sketch = mine or theirs
                assert source_sketch is not None
                copy = HyperLogLog(self._hll_precision, salt=7)
                copy = copy.merge(source_sketch)
                merged._ip_sketches[rel_hour] = copy
        merged._flows_seen = self._flows_seen + other._flows_seen
        return merged
