"""Change-point detection on weekly traffic series.

The paper reads the lockdown dates off government announcements and
finds the traffic shifts "almost within a week".  This module closes
the loop in the other direction: detect the shift week from the traffic
alone and compare it against the regional timeline — a consistency
check on both the synthetic world and the analysis pipeline, and a
practical tool for operators watching for demand regime changes.

Method: for every candidate week, score the ratio of the mean weekly
volume in a trailing window after the candidate against a leading
window before it; the candidate maximizing the deviation from 1.0 (in
the requested direction) is the detected change point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import timebase
from repro.core import aggregate
from repro.series import HourlySeries


@dataclass(frozen=True)
class ChangePoint:
    """A detected weekly regime change."""

    week: int
    score: float  # after/before volume ratio at the change point
    direction: str  # "increase" | "decrease"

    @property
    def magnitude(self) -> float:
        """Relative change at the detected week (signed)."""
        return self.score - 1.0


def weekly_volumes(series: HourlySeries) -> Dict[int, float]:
    """Average daily volume per ISO week covered by the series."""
    weekly = aggregate.weekly_normalized(series)
    return weekly.as_dict()


def detect_change_week(
    series: HourlySeries,
    direction: str = "increase",
    window: int = 2,
    min_week: int = 4,
    max_week: Optional[int] = None,
) -> ChangePoint:
    """Detect the week where the traffic regime changes.

    ``window`` weeks before and after each candidate are averaged; the
    candidate week itself is included in the *after* side (the paper's
    shifts complete within the lockdown week).  Candidates without a
    full window on both sides are skipped.
    """
    if direction not in ("increase", "decrease"):
        raise ValueError("direction must be 'increase' or 'decrease'")
    if window < 1:
        raise ValueError("window must be at least one week")
    volumes = weekly_volumes(series)
    weeks = sorted(volumes)
    max_week = max_week if max_week is not None else weeks[-1]
    best: Optional[ChangePoint] = None
    for candidate in weeks:
        if candidate < min_week or candidate > max_week:
            continue
        before_weeks = [w for w in weeks if candidate - window <= w < candidate]
        after_weeks = [w for w in weeks if candidate <= w < candidate + window]
        if len(before_weeks) < window or len(after_weeks) < window:
            continue
        before = float(np.mean([volumes[w] for w in before_weeks]))
        after = float(np.mean([volumes[w] for w in after_weeks]))
        if before <= 0:
            continue
        score = after / before
        is_better = (
            best is None
            or (direction == "increase" and score > best.score)
            or (direction == "decrease" and score < best.score)
        )
        if is_better:
            best = ChangePoint(candidate, score, direction)
    if best is None:
        raise ValueError("series too short for the requested windows")
    return best


def timeline_consistency(
    detected: ChangePoint, timeline: timebase.LockdownTimeline
) -> int:
    """Distance in weeks between the detection and the lockdown week.

    Zero means the detector recovered the lockdown week exactly; the
    paper's observation that shifts happen within a week of lockdown
    implies |distance| <= 1 for the volume-affected vantage points.
    """
    lockdown_week = timebase.iso_week(timeline.lockdown)
    return detected.week - lockdown_week


def detect_per_vantage(
    series_by_vantage: Dict[str, HourlySeries],
    directions: Optional[Dict[str, str]] = None,
) -> Dict[str, ChangePoint]:
    """Run detection over several vantage points at once.

    ``directions`` overrides the per-vantage search direction (default:
    increase everywhere).
    """
    directions = directions or {}
    return {
        name: detect_change_week(
            series, directions.get(name, "increase")
        )
        for name, series in series_by_vantage.items()
    }
