"""IXP peering-graph analysis (networkx).

The traffic matrix of :mod:`repro.core.matrix` induces a weighted
directed peering graph over the IXP's members.  Its structure carries
several of the paper's observations:

* the platform is near-bipartite in *bytes* — content/hypergiant
  members send, eyeball members receive (§3.2),
* a small set of hub members dominates (the §3.1 "diverse customer
  base" still concentrates volume),
* rerouting decisions appear as edge churn: §5 attributes the IXP-US
  VoD decline to "a traffic engineering decision of the large AS, e.g.,
  establishing a private network interconnect instead of peering" —
  i.e. a heavy edge leaving the public platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.matrix import TrafficMatrix


def build_peering_graph(matrix: TrafficMatrix,
                        min_bytes: float = 0.0) -> nx.DiGraph:
    """The weighted directed peering graph of a traffic matrix.

    Nodes are member ASNs; an edge (a, b) carries ``weight`` bytes sent
    from a to b.  ``min_bytes`` drops negligible edges.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(matrix.asns)
    rows, cols = np.nonzero(matrix.volumes > min_bytes)
    for i, j in zip(rows, cols):
        graph.add_edge(
            matrix.asns[i], matrix.asns[j],
            weight=float(matrix.volumes[i, j]),
        )
    return graph


@dataclass(frozen=True)
class GraphSummary:
    """Structural statistics of a peering graph."""

    n_members: int
    n_edges: int
    density: float
    top_hubs: Tuple[Tuple[int, float], ...]  # (asn, weighted degree)
    bipartite_byte_fraction: float  # bytes on source->sink edges
    total_weighted_degree: float

    @property
    def hub_share(self) -> float:
        """Share of total weighted degree carried by the listed hubs."""
        if self.total_weighted_degree <= 0:
            return 0.0
        return sum(w for _, w in self.top_hubs) / self.total_weighted_degree


def summarize_graph(
    graph: nx.DiGraph,
    sources: Sequence[int],
    sinks: Sequence[int],
    n_hubs: int = 10,
) -> GraphSummary:
    """Compute the structural statistics of a peering graph.

    ``sources``/``sinks`` label the member roles (from
    :func:`repro.core.matrix.source_sink_split` or the registry).
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no members")
    weighted_degree = {
        node: sum(d["weight"] for _, _, d in graph.edges(node, data=True))
        + sum(d["weight"] for _, _, d in graph.in_edges(node, data=True))
        for node in graph.nodes
    }
    hubs = tuple(
        sorted(weighted_degree.items(), key=lambda kv: -kv[1])[:n_hubs]
    )
    total_bytes = sum(d["weight"] for _, _, d in graph.edges(data=True))
    source_set, sink_set = set(sources), set(sinks)
    bipartite_bytes = sum(
        d["weight"]
        for a, b, d in graph.edges(data=True)
        if a in source_set and b in sink_set
    )
    return GraphSummary(
        n_members=graph.number_of_nodes(),
        n_edges=graph.number_of_edges(),
        density=float(nx.density(graph)),
        top_hubs=hubs,
        bipartite_byte_fraction=(
            bipartite_bytes / total_bytes if total_bytes > 0 else 0.0
        ),
        total_weighted_degree=float(sum(weighted_degree.values())),
    )


@dataclass(frozen=True)
class EdgeChurn:
    """Edge-level change between two peering graphs."""

    appeared: Tuple[Tuple[int, int], ...]
    disappeared: Tuple[Tuple[int, int], ...]
    heaviest_lost_weight: float  # weight of the largest vanished edge

    @property
    def n_appeared(self) -> int:
        """Count of new edges."""
        return len(self.appeared)

    @property
    def n_disappeared(self) -> int:
        """Count of vanished edges."""
        return len(self.disappeared)


def edge_churn(
    base: nx.DiGraph, stage: nx.DiGraph, min_bytes: float = 0.0
) -> EdgeChurn:
    """Edges that appeared/disappeared between two weeks.

    ``min_bytes`` filters noise edges on both sides, so churn reflects
    real (dis)connections — e.g. a member moving a heavy flow to a
    private interconnect.
    """
    def significant(graph):
        return {
            (a, b)
            for a, b, d in graph.edges(data=True)
            if d["weight"] > min_bytes
        }

    base_edges = significant(base)
    stage_edges = significant(stage)
    disappeared = tuple(sorted(base_edges - stage_edges))
    appeared = tuple(sorted(stage_edges - base_edges))
    heaviest = 0.0
    for a, b in disappeared:
        heaviest = max(heaviest, float(base[a][b]["weight"]))
    return EdgeChurn(
        appeared=appeared,
        disappeared=disappeared,
        heaviest_lost_weight=heaviest,
    )


def largest_connected_share(graph: nx.DiGraph) -> float:
    """Fraction of members inside the largest weakly connected component.

    An IXP platform should be one fabric; values below 1.0 indicate
    isolated members (possible at low sampling fidelity).
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no members")
    largest = max(nx.weakly_connected_components(graph), key=len)
    return len(largest) / graph.number_of_nodes()
