"""Application-class traffic classification (§5, Table 1, Figs 8, 9).

A class is defined by a list of :class:`ClassFilter`\\ s, each combining
AS and/or transport-port criteria (Table 1: "filters are based on
transport ports or ASes, either in combination or separately").  A flow
matches a class if any of its filters matches; classes may overlap, as
in the paper (social networks also carry video telephony, etc.).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import timebase
from repro.flows.record import PROTO_TCP, PROTO_UDP
from repro.flows.table import FlowTable
from repro.netbase import ports as portdb
from repro.series import HourlySeries


@dataclass(frozen=True)
class ClassFilter:
    """One AS/port filter of an application class.

    ``asns`` empty means "any AS"; ``ports`` empty means "any port".
    ``protos`` restricts the transport protocol (empty = any).  A filter
    with both criteria requires both (the Table 1 "in combination"
    case).
    """

    asns: FrozenSet[int] = frozenset()
    ports: FrozenSet[int] = frozenset()
    protos: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if not self.asns and not self.ports:
            raise ValueError("a filter needs AS or port criteria")

    def mask(self, flows: FlowTable) -> np.ndarray:
        """Boolean match mask over ``flows``."""
        mask = np.ones(len(flows), dtype=bool)
        if self.asns:
            wanted = np.asarray(sorted(self.asns), dtype=np.int64)
            mask &= np.isin(flows.column("src_asn"), wanted) | np.isin(
                flows.column("dst_asn"), wanted
            )
        if self.ports:
            wanted_ports = np.asarray(sorted(self.ports), dtype=np.int64)
            mask &= np.isin(flows.service_ports(), wanted_ports)
        if self.protos:
            wanted_protos = np.asarray(sorted(self.protos), dtype=np.int64)
            mask &= np.isin(flows.column("proto"), wanted_protos)
        return mask


@dataclass(frozen=True)
class AppClass:
    """An application class: a named union of filters."""

    name: str
    filters: Tuple[ClassFilter, ...]

    def __post_init__(self) -> None:
        if not self.filters:
            raise ValueError(f"class {self.name!r} needs filters")

    def mask(self, flows: FlowTable) -> np.ndarray:
        """Union of the class's filter masks."""
        mask = np.zeros(len(flows), dtype=bool)
        for filt in self.filters:
            mask |= filt.mask(flows)
        return mask

    def select(self, flows: FlowTable) -> FlowTable:
        """The sub-table of flows matching the class."""
        return flows.filter(self.mask(flows))

    @property
    def n_filters(self) -> int:
        """Table 1 column: number of filters."""
        return len(self.filters)

    @property
    def distinct_asns(self) -> FrozenSet[int]:
        """Table 1 column: distinct ASNs across the class's filters."""
        asns: set = set()
        for filt in self.filters:
            asns |= set(filt.asns)
        return frozenset(asns)

    @property
    def distinct_ports(self) -> FrozenSet[int]:
        """Table 1 column: distinct transport ports across filters."""
        ports: set = set()
        for filt in self.filters:
            ports |= set(filt.ports)
        return frozenset(ports)


def _f(
    asns: Sequence[int] = (),
    ports: Sequence[int] = (),
    protos: Sequence[int] = (),
) -> ClassFilter:
    return ClassFilter(
        asns=frozenset(asns), ports=frozenset(ports), protos=frozenset(protos)
    )


def standard_classes() -> Dict[str, AppClass]:
    """The nine application classes of Table 1.

    Filter / ASN / port counts match the table exactly:

    ==================  =======  =====  =====
    class               filters  ASNs   ports
    ==================  =======  =====  =====
    Web conf                  7      1      6
    VoD                       5      5      -
    gaming                    8      5     57
    social media              4      4      1
    messaging                 3      -      5
    email                     1      -     10
    educational               9      9      -
    collaborative work        8      2      9
    CDN                       8      8      -
    ==================  =======  =====  =====
    """
    classes: Dict[str, AppClass] = {}

    def add(name: str, *filters: ClassFilter) -> None:
        classes[name] = AppClass(name=name, filters=tuple(filters))

    add(
        "webconf",
        _f(asns=[8075], ports=[3480], protos=[PROTO_UDP]),
        _f(asns=[8075], ports=[3478], protos=[PROTO_UDP]),
        _f(asns=[8075], ports=[3479], protos=[PROTO_UDP]),
        _f(ports=[5061], protos=[PROTO_TCP]),
        _f(ports=[8801], protos=[PROTO_UDP]),
        _f(ports=[8802], protos=[PROTO_UDP]),
        _f(asns=[8075], ports=[3478, 3479, 3480]),
    )
    add(
        "vod",
        _f(asns=[2906]),
        _f(asns=[40027]),
        _f(asns=[35402]),
        _f(asns=[29990]),
        _f(asns=[8403]),
    )
    add(
        "gaming",
        _f(asns=[32590], ports=portdb.GAMING_PORTS_STEAM),
        _f(asns=[32590]),
        _f(asns=[6507], ports=portdb.GAMING_PORTS_RIOT),
        _f(asns=[57976], ports=portdb.GAMING_PORTS_BLIZZARD),
        _f(asns=[46555], ports=portdb.GAMING_PORTS_EPIC),
        _f(asns=[2639], ports=portdb.GAMING_PORTS_NINTENDO),
        _f(ports=portdb.GAMING_PORTS_XBOX + portdb.GAMING_PORTS_PSN),
        _f(ports=portdb.GAMING_PORTS, protos=[PROTO_UDP]),
    )
    add(
        "social",
        _f(asns=[32934]),
        _f(asns=[13414]),
        _f(asns=[13767]),
        _f(asns=[54113], ports=[443]),
    )
    add(
        "messaging",
        _f(ports=[5222, 5223], protos=[PROTO_TCP]),
        _f(ports=[1863], protos=[PROTO_TCP]),
        _f(ports=[4244, 5242]),
    )
    add("email", _f(ports=portdb.EMAIL_PORTS, protos=[PROTO_TCP]))
    add(
        "educational",
        *[_f(asns=[asn]) for asn in (680, 766, 1103, 2200, 137, 11537, 668, 559, 786)],
    )
    add(
        "collab",
        _f(asns=[14061]),
        _f(asns=[19679]),
        _f(ports=[17500]),
        _f(ports=[1352]),
        _f(ports=[8443, 9443], protos=[PROTO_TCP]),
        _f(ports=[5005]),
        _f(ports=[3220, 3221]),
        _f(ports=[6000, 18080], protos=[PROTO_TCP]),
    )
    add(
        "cdn",
        *[
            _f(asns=[asn])
            for asn in (54994, 60068, 32787, 12989, 3356, 202623, 49544, 136787)
        ],
    )
    return classes


def table1_rows(
    classes: Optional[Mapping[str, AppClass]] = None,
) -> List[Tuple[str, int, int, int]]:
    """Table 1: (class, #filters, #distinct ASNs, #distinct ports)."""
    classes = classes or standard_classes()
    rows = []
    for name in sorted(classes):
        cls = classes[name]
        rows.append(
            (name, cls.n_filters, len(cls.distinct_asns), len(cls.distinct_ports))
        )
    return rows


# ---------------------------------------------------------------------------
# Fig 8: the gaming deep-dive.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassActivity:
    """Hourly activity of one class over a period, plus daily envelopes.

    ``unique_ips``/``volume`` are normalized to their own minimum over
    the period (Fig 8's presentation); the envelopes are per-day
    min/avg/max of the normalized hourly values.
    """

    start_day: _dt.date
    unique_ips: HourlySeries
    volume: HourlySeries
    daily_min: Dict[_dt.date, Tuple[float, float]]  # (ips, volume)
    daily_avg: Dict[_dt.date, Tuple[float, float]]
    daily_max: Dict[_dt.date, Tuple[float, float]]


def class_activity(
    flows: FlowTable,
    app_class: AppClass,
    start_day: _dt.date,
    end_day: _dt.date,
    ip_side: str = "dst",
) -> ClassActivity:
    """Fig 8 metrics for one class: distinct IPs and volume per hour.

    ``ip_side`` selects which endpoint approximates "households"
    (``dst`` for download-style classes where clients receive).
    """
    selected = app_class.select(flows)
    start = timebase.hour_index(start_day, 0)
    stop = timebase.hour_index(end_day, 23) + 1
    ips = selected.unique_ips_per_hour(start, stop, side=ip_side)
    volume = selected.hourly_bytes(start, stop).astype(np.float64)
    ip_floor = float(ips[ips > 0].min()) if np.any(ips > 0) else 1.0
    vol_floor = float(volume[volume > 0].min()) if np.any(volume > 0) else 1.0
    ips_norm = HourlySeries(start, ips / ip_floor)
    vol_norm = HourlySeries(start, volume / vol_floor)
    daily_min: Dict[_dt.date, Tuple[float, float]] = {}
    daily_avg: Dict[_dt.date, Tuple[float, float]] = {}
    daily_max: Dict[_dt.date, Tuple[float, float]] = {}
    for day, ip_vals in ips_norm.iter_days():
        vol_vals = vol_norm.day_values(day)
        daily_min[day] = (float(ip_vals.min()), float(vol_vals.min()))
        daily_avg[day] = (float(ip_vals.mean()), float(vol_vals.mean()))
        daily_max[day] = (float(ip_vals.max()), float(vol_vals.max()))
    return ClassActivity(
        start_day=start_day,
        unique_ips=ips_norm,
        volume=vol_norm,
        daily_min=daily_min,
        daily_avg=daily_avg,
        daily_max=daily_max,
    )


# ---------------------------------------------------------------------------
# Fig 9: application-class heatmaps.
# ---------------------------------------------------------------------------

#: Hours removed from the heatmaps ("we remove the early morning hours
#: (2-7 am)"), as a half-open range.
MORNING_HOURS_REMOVED = (2, 7)

#: Growth clipping bounds in percent ("we cut off any growth above 200%
#: and decrease below 100%").
CLIP_PERCENT = (-100.0, 200.0)


@dataclass(frozen=True)
class ClassHeatmap:
    """One class's Fig 9 row at one vantage point.

    ``base`` holds the base week's normalized hourly volume (0-1);
    ``diffs`` holds, per stage label, the percent difference to the base
    week hour-by-hour, clipped to [-100, +200].  All arrays have
    ``7 * kept_hours`` entries (morning hours removed).
    """

    class_name: str
    hours_kept: Tuple[int, ...]
    base: np.ndarray
    diffs: Dict[str, np.ndarray]


def _kept_hour_indices() -> Tuple[int, ...]:
    h0, h1 = MORNING_HOURS_REMOVED
    return tuple(h for h in range(24) if not h0 <= h < h1)


def _week_kept_hours(
    flows: FlowTable, week: timebase.Week, kept: Sequence[int]
) -> np.ndarray:
    start, stop = week.hour_range()
    hourly = flows.hourly_bytes(start, stop).astype(np.float64)
    days = hourly.reshape(7, 24)
    return days[:, list(kept)].reshape(-1)


def class_heatmaps(
    flows: FlowTable,
    weeks: Mapping[str, timebase.Week],
    classes: Optional[Mapping[str, AppClass]] = None,
) -> Dict[str, ClassHeatmap]:
    """Fig 9: per-class base pattern and stage-difference heatmaps.

    ``weeks`` must contain ``base`` plus any number of stage labels.
    Normalization follows §5: per class, min/max over all three weeks
    jointly (after removing the early-morning hours); differences are
    percentages of that normalized scale, clipped to [-100, +200].
    """
    if "base" not in weeks:
        raise ValueError("weeks must include a 'base' entry")
    classes = classes or standard_classes()
    kept = _kept_hour_indices()
    heatmaps: Dict[str, ClassHeatmap] = {}
    for name in sorted(classes):
        selected = classes[name].select(flows)
        raw = {
            label: _week_kept_hours(selected, week, kept)
            for label, week in weeks.items()
        }
        lo = min(float(v.min()) for v in raw.values())
        hi = max(float(v.max()) for v in raw.values())
        span = hi - lo if hi > lo else 1.0
        norm = {label: (v - lo) / span for label, v in raw.items()}
        base = norm["base"]
        diffs = {}
        for label, values in norm.items():
            if label == "base":
                continue
            diffs[label] = np.clip(
                (values - base) * 100.0, CLIP_PERCENT[0], CLIP_PERCENT[1]
            )
        heatmaps[name] = ClassHeatmap(
            class_name=name, hours_kept=kept, base=base, diffs=diffs
        )
    return heatmaps


def weekly_class_growth(
    flows: FlowTable,
    app_class: AppClass,
    base_week: timebase.Week,
    stage_week: timebase.Week,
) -> float:
    """Relative growth of a class's *total weekly* volume.

    The §5 statements about overall class volume (VoD "up to 100%" at
    the European IXPs but "about 30%" at the ISP, gaming "about 10%" at
    the ISP, educational "+200%" at the ISP-CE) compare whole weeks,
    unlike the business-hours statements.
    """
    selected = app_class.select(flows)
    base_start, base_stop = base_week.hour_range()
    stage_start, stage_stop = stage_week.hour_range()
    base = float(selected.hourly_bytes(base_start, base_stop).sum())
    stage = float(selected.hourly_bytes(stage_start, stage_stop).sum())
    if base <= 0:
        raise ValueError("base week has no traffic for the class")
    return stage / base - 1.0


def business_hours_growth(
    flows: FlowTable,
    app_class: AppClass,
    base_week: timebase.Week,
    stage_week: timebase.Week,
    region: timebase.Region,
    hours: Tuple[int, int] = (9, 17),
    weekend: bool = False,
) -> float:
    """Relative growth of a class during business hours on workdays
    (or on weekend days when ``weekend`` is set), stage vs. base.

    This is the quantity behind the §5 statements ("Web conferencing
    applications show a dramatic increase of more than 200% during
    business hours").
    """
    selected = app_class.select(flows)
    h0, h1 = hours

    def _mean_business(week: timebase.Week) -> float:
        start, stop = week.hour_range()
        hourly = selected.hourly_bytes(start, stop).astype(np.float64)
        days = hourly.reshape(7, 24)
        values = []
        for i, day in enumerate(week.days()):
            is_weekend = timebase.behaves_like_weekend(day, region)
            if is_weekend == weekend:
                values.append(days[i, h0:h1].mean())
        return float(np.mean(values)) if values else 0.0

    base = _mean_business(base_week)
    stage = _mean_business(stage_week)
    if base <= 0:
        raise ValueError("base week has no traffic for the class")
    return stage / base - 1.0
