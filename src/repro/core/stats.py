"""Statistical significance tests for the paper's comparisons.

Thin, intention-revealing wrappers over :mod:`scipy.stats` for the two
comparison shapes the reproduction makes repeatedly:

* **distribution shifts** — Fig 5 compares the member-utilization
  distribution before vs during the lockdown; a two-sample
  Kolmogorov-Smirnov test quantifies whether the observed right shift
  exceeds sampling noise,
* **level shifts** — day-level volume samples before vs after an event
  (lockdown, relaxation); the Mann-Whitney U test makes no normality
  assumption, matching the heavy-tailed day totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class ShiftTest:
    """Outcome of a two-sample shift test."""

    statistic: float
    p_value: float
    direction: str  # "right" (stage larger), "left", or "none"

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the shift is significant at level ``alpha``."""
        return self.p_value < alpha


def _direction(base: np.ndarray, stage: np.ndarray) -> str:
    base_median = float(np.median(base))
    stage_median = float(np.median(stage))
    if stage_median > base_median:
        return "right"
    if stage_median < base_median:
        return "left"
    return "none"


def ks_shift(
    base: Sequence[float], stage: Sequence[float]
) -> ShiftTest:
    """Two-sample KS test for a distribution shift (Fig 5's ECDFs)."""
    base_arr = np.asarray(base, dtype=np.float64)
    stage_arr = np.asarray(stage, dtype=np.float64)
    if base_arr.size < 3 or stage_arr.size < 3:
        raise ValueError("both samples need at least three values")
    result = _scipy_stats.ks_2samp(base_arr, stage_arr)
    return ShiftTest(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        direction=_direction(base_arr, stage_arr),
    )


def mannwhitney_shift(
    base: Sequence[float], stage: Sequence[float]
) -> ShiftTest:
    """Mann-Whitney U test for a level shift between two samples."""
    base_arr = np.asarray(base, dtype=np.float64)
    stage_arr = np.asarray(stage, dtype=np.float64)
    if base_arr.size < 3 or stage_arr.size < 3:
        raise ValueError("both samples need at least three values")
    result = _scipy_stats.mannwhitneyu(
        base_arr, stage_arr, alternative="two-sided"
    )
    return ShiftTest(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        direction=_direction(base_arr, stage_arr),
    )


def spearman_trend(values: Sequence[float]) -> ShiftTest:
    """Spearman rank correlation against time (monotone-trend test).

    Used to confirm, e.g., that the IXP-US growth is genuinely delayed
    and rising through April rather than noise.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.size < 4:
        raise ValueError("trend test needs at least four values")
    result = _scipy_stats.spearmanr(np.arange(array.size), array)
    direction = (
        "right" if result.statistic > 0
        else "left" if result.statistic < 0 else "none"
    )
    return ShiftTest(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        direction=direction,
    )
