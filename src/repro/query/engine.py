"""Query planning and execution over partitioned flow stores.

The engine turns one :class:`~repro.query.spec.QuerySpec` into a
:class:`QueryPlan` — the minimal set of :class:`~repro.flows.store.FlowStore`
day partitions that can contribute rows — and executes the plan one
partition at a time, in parallel when given a worker pool.  Each
partition scan pushes the spec's predicates into a single boolean mask,
groups the surviving rows through the table's memoized
:class:`~repro.flows.groupby.GroupIndex` machinery, and produces
*partial aggregates*: exact int64 sums per group plus one HyperLogLog
sketch per distinct-count aggregate.  Partials merge associatively
(integer addition, register-wise sketch union), so the full date range
is never materialized in memory — the resident set is one partition
plus the accumulated group dictionary.

Partition failures are data, not crashes: a partition that raises
:class:`~repro.flows.store.FlowStoreError` (missing file, checksum
mismatch, unreadable archive) is recorded in
:attr:`QueryResult.partitions_failed` and the scan continues.
"""

from __future__ import annotations

import datetime as _dt
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field, replace
from threading import Event
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro import timebase
from repro.flows import colstore, encodings
from repro.flows.groupby import GroupIndex
from repro.flows.hll import HyperLogLog
from repro.flows.store import FORMAT_V1, FORMAT_V3, FlowStore, FlowStoreError
from repro.flows.table import COLUMNS, DERIVED_KEYS, FlowTable
from repro.query.errors import QueryCancelled, QueryTimeout
from repro.query.spec import (
    AGGREGATE_INPUT_COLUMNS,
    EXACT_AGGREGATE_COLUMNS,
    SKETCH_AGGREGATES,
    QuerySpec,
)

#: Group tuple → aggregate name → exact integer value.
Sums = Dict[Tuple[int, ...], Dict[str, int]]

#: Group tuple → aggregate name → HyperLogLog sketch.
Sketches = Dict[Tuple[int, ...], Dict[str, HyperLogLog]]


@dataclass(frozen=True)
class QueryPlan:
    """The partitions one query will touch, after pruning.

    ``days`` are the partitions to scan; ``pruned_out_of_range`` counts
    store partitions outside the query's date range,
    ``pruned_empty`` partitions inside the range whose manifest reports
    zero flows, ``pruned_by_hour`` partitions whose 24-hour window
    cannot intersect an ``hour`` predicate, and ``pruned_by_zone``
    partitions whose sidecar zone map (per-column min/max) proves a
    predicate cannot match any row.  ``missing_days`` are range days
    with no partition at all (informational — a sparse store is not an
    error).

    ``columns`` is the physical projection the scans will load,
    ``sidecar_days`` how many planned days will be answered from
    sidecar pre-aggregates without row I/O, and ``estimated_bytes`` the
    predicted partition bytes behind the remaining scans (encoded part
    bytes for v3 days, segment bytes of projected columns for v2 days,
    archive bytes scaled by the projected-column fraction for v1 days).
    ``day_strategies`` records, parallel to ``days``, the per-partition
    scan strategy the cost model picked (``"sidecar"``, ``"bitmap"``,
    ``"scan"``, or ``"full"`` for v1/full loads).
    """

    spec: QuerySpec
    days: Tuple[_dt.date, ...]
    missing_days: Tuple[_dt.date, ...]
    pruned_out_of_range: int
    pruned_empty: int
    pruned_by_hour: int
    pruned_by_zone: int = 0
    columns: Tuple[str, ...] = ()
    sidecar_days: int = 0
    estimated_bytes: int = 0
    day_strategies: Tuple[str, ...] = ()

    @property
    def n_pruned(self) -> int:
        """Store partitions skipped without being read."""
        return self.pruned_out_of_range + self.pruned_empty + \
            self.pruned_by_hour + self.pruned_by_zone

    def strategy_counts(self) -> Dict[str, int]:
        """How many planned days use each scan strategy."""
        counts: Dict[str, int] = {}
        for strategy in self.day_strategies:
            counts[strategy] = counts.get(strategy, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (``repro query --explain``)."""
        return {
            "spec": self.spec.describe(),
            "fingerprint": self.spec.fingerprint(),
            "days": [d.isoformat() for d in self.days],
            "missing_days": [d.isoformat() for d in self.missing_days],
            "pruned": {
                "out_of_range": self.pruned_out_of_range,
                "empty": self.pruned_empty,
                "by_hour": self.pruned_by_hour,
                "by_zone": self.pruned_by_zone,
            },
            "columns": list(self.columns),
            "sidecar_days": self.sidecar_days,
            "estimated_bytes": self.estimated_bytes,
            "strategies": self.strategy_counts(),
        }


@dataclass(frozen=True)
class ScanStats:
    """Per-partition scan diagnostics.

    ``mode`` names the I/O strategy taken: ``"mmap"`` (projected
    memory-mapped v2/v3 scan), ``"bitmap"`` (v3 predicate-first scan —
    bitmap/dictionary-code filtering before any row materialization),
    ``"full"`` (whole-partition load — v1 archives and the
    ``REPRO_NO_COLSTORE`` path), or ``"sidecar"`` (answered from
    pre-aggregates without touching row data).
    """

    rows_scanned: int
    rows_matched: int
    bytes_read: int
    columns: Tuple[str, ...]
    mode: str


@dataclass
class PartitionFailure:
    """One partition the engine could not serve."""

    day: str
    error: str

    def to_dict(self) -> Dict[str, str]:
        return {"day": self.day, "error": self.error}


@dataclass
class QueryResult:
    """The merged outcome of one executed query.

    ``rows`` is a list of dicts carrying the spec's key columns (the
    time bucket first, then group keys) and one entry per aggregate,
    ordered by key.  Distinct-count aggregates are HyperLogLog
    estimates (rounded to int) with relative standard error
    ``hll_error``; all other aggregates are exact int64 sums.
    """

    fingerprint: str
    vantage: str
    key_names: Tuple[str, ...]
    aggregates: Tuple[str, ...]
    rows: List[Dict[str, object]]
    partitions_planned: int
    partitions_scanned: int
    partitions_pruned: int
    partitions_failed: List[PartitionFailure] = field(default_factory=list)
    rows_scanned: int = 0
    rows_matched: int = 0
    bytes_read: int = 0
    columns_loaded: Tuple[str, ...] = ()
    hll_error: float = 0.0
    wall_s: float = 0.0
    from_cache: bool = False
    #: Per-stage wall seconds: ``plan``/``scan``/``merge`` filled by the
    #: engine (``scan`` sums per-partition scan walls, so it can exceed
    #: elapsed time under parallelism), ``queue``/``cache_store``/
    #: ``total`` stamped by the query service.  A cache hit gets a
    #: fresh dict with zeroed execution stages.
    stages: Dict[str, float] = field(default_factory=dict)
    #: Compact plan diagnostics (pruning, projection, sidecar use) —
    #: what ``--explain`` would have reported for this execution.
    plan_summary: Optional[Dict[str, object]] = None

    @property
    def n_failed(self) -> int:
        return len(self.partitions_failed)

    def column(self, name: str) -> List[object]:
        """One key or aggregate column across all rows, in row order."""
        return [row[name] for row in self.rows]

    def hourly(self, aggregate: str, start: int, stop: int) -> np.ndarray:
        """A dense per-hour series for a ``bucket="hour"`` query.

        Hours in ``[start, stop)`` with no matching flows are zero.
        """
        if not self.key_names or self.key_names[0] != "hour":
            raise ValueError("hourly() needs a bucket='hour' query result")
        if len(self.key_names) != 1:
            raise ValueError("hourly() needs a query with no group keys")
        out = np.zeros(stop - start, dtype=np.int64)
        for row in self.rows:
            hour = int(row["hour"])
            if start <= hour < stop:
                out[hour - start] = int(row[aggregate])
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (CLI output, JSONL batch results)."""
        return {
            "fingerprint": self.fingerprint,
            "vantage": self.vantage,
            "key_names": list(self.key_names),
            "aggregates": list(self.aggregates),
            "rows": self.rows,
            "partitions": {
                "planned": self.partitions_planned,
                "scanned": self.partitions_scanned,
                "pruned": self.partitions_pruned,
                "failed": [f.to_dict() for f in self.partitions_failed],
            },
            "rows_scanned": self.rows_scanned,
            "rows_matched": self.rows_matched,
            "bytes_read": self.bytes_read,
            "columns_loaded": list(self.columns_loaded),
            "hll_error": round(self.hll_error, 6),
            "wall_s": round(self.wall_s, 6),
            "from_cache": self.from_cache,
            "stages": {
                name: round(value, 6)
                for name, value in sorted(self.stages.items())
            },
            "plan": self.plan_summary,
        }


def _sidecar_answerable(spec: QuerySpec) -> bool:
    """Whether v2 sidecar pre-aggregates can answer ``spec`` exactly.

    They can when the query needs no per-row state: no group keys, only
    ``bytes``/``flows`` aggregates (both pre-aggregated per hour), and
    only ``hour`` predicates (the pre-aggregate granularity).  Any time
    bucket works — hours are native, day/whole-range are coarser.
    """
    return (
        not spec.group_by
        and all(a in ("bytes", "flows") for a in spec.aggregates)
        and all(p.column == "hour" for p in spec.where)
    )


def _zone_disjoint(partition: colstore.ColumnarPartition,
                   predicate) -> bool:
    """Whether a zone map proves ``predicate`` matches no row."""
    zone = partition.zone(predicate.column)
    if zone is None:
        return False
    lo, hi = zone
    # Both predicate forms keep their values sorted, so the first and
    # last bound the acceptance set.
    return predicate.values[0] > hi or predicate.values[-1] < lo


def _materialize_columns(spec: QuerySpec) -> Tuple[str, ...]:
    """Physical columns a scan needs *after* the filter stage.

    Group keys (derived expanded), the ``hour`` column for hour
    bucketing, and aggregate inputs — but not pure-predicate columns,
    which the v3 predicate-first scan never materializes.
    """
    names = list(spec.group_by)
    if spec.bucket == "hour":
        names.append("hour")
    for aggregate in spec.aggregates:
        column = AGGREGATE_INPUT_COLUMNS[aggregate]
        if column is not None:
            names.append(column)
    base = colstore.required_base_columns(names)
    return tuple(name for name in COLUMNS if name in base)


def _predicate_selectivity(predicate, meta: dict, rows: int) -> float:
    """Estimated match fraction of one predicate on a dict column.

    Exact when the sidecar carries per-value counts (cardinality up to
    ``encodings.STATS_MAX_CARD``); otherwise assumes uniform spread
    over the dictionary; 1.0 when nothing is known.
    """
    values = meta.get("values")
    counts = meta.get("counts")
    if values is not None and counts is not None and rows:
        if predicate.op == "range":
            lo, hi = predicate.values[0], predicate.values[-1]
            matched = sum(
                c for v, c in zip(values, counts) if lo <= v <= hi
            )
        else:
            lookup = dict(zip(values, counts))
            matched = sum(lookup.get(int(v), 0) for v in predicate.values)
        return min(1.0, matched / rows)
    cardinality = int(meta.get("cardinality") or 0)
    if cardinality and predicate.op == "in":
        return min(1.0, len(predicate.values) / cardinality)
    return 1.0


def _partition_strategy(
    partition: colstore.ColumnarPartition, spec: QuerySpec
) -> Tuple[str, int]:
    """Pick bitmap-vs-scan for one partition, with estimated read bytes.

    A pure function of ``(partition sidecar, spec)``: the planner, the
    in-process scan, and every process-pool worker re-derive the same
    choice independently, so no plan context needs shipping.

    The v3 predicate-first path pays for predicate structures up front
    (bitmap rows or dictionary codes, plus a rows/8 mask) and then
    reads only the estimated surviving fraction of the materialized
    columns; the plain scan reads every projected column in full.  The
    smaller estimate wins.

    Being pure also makes the result cacheable: partition handles live
    as long as their manifest sha, so the choice is memoized per spec
    and the planner + scan pair cost one derivation, not two.
    """
    cache = partition.strategy_cache
    key = (spec, colstore.v3_enabled())
    cached = cache.get(key)
    if cached is not None:
        return cached
    choice = _derive_partition_strategy(partition, spec)
    if len(cache) >= 128:
        cache.clear()
    cache[key] = choice
    return choice


def _derive_partition_strategy(
    partition: colstore.ColumnarPartition, spec: QuerySpec
) -> Tuple[str, int]:
    scan_bytes = partition.column_nbytes(spec.referenced_columns())
    if partition.format != FORMAT_V3 or not colstore.v3_enabled():
        return "scan", scan_bytes
    if not spec.where:
        return "scan", scan_bytes
    sidecar = partition.sidecar
    rows = partition.rows
    predicate_bytes = 0
    selectivity = 1.0
    resolvable = 0
    for predicate in spec.where:
        meta = (
            sidecar["columns"].get(predicate.column)
            if predicate.column in COLUMNS else None
        )
        if meta is None or meta.get("encoding") != encodings.DICT:
            continue
        resolvable += 1
        index = (sidecar.get("indexes") or {}).get(predicate.column)
        if index is not None and predicate.op == "in":
            predicate_bytes += int(index["part"]["nbytes"])
        else:
            parts = meta.get("parts") or {}
            codes = parts.get("codes")
            if codes is not None:
                predicate_bytes += int(codes["nbytes"])
        selectivity *= _predicate_selectivity(predicate, meta, rows)
    if not resolvable:
        return "scan", scan_bytes
    materialize_bytes = partition.column_nbytes(_materialize_columns(spec))
    bitmap_bytes = int(
        predicate_bytes + rows // 8 + selectivity * materialize_bytes
    )
    if bitmap_bytes < scan_bytes:
        return "bitmap", bitmap_bytes
    return "scan", scan_bytes


def plan_query(store: FlowStore, spec: QuerySpec) -> QueryPlan:
    """Choose the partitions to scan, with data skipping.

    Manifest-only pruning drops out-of-range, empty, and hour-disjoint
    partitions without opening anything.  For v2 partitions the sidecar
    zone map then drops days whose per-column min/max cannot satisfy a
    predicate — a sidecar read, but never row data.  A sidecar that
    fails verification here is *not* treated as prunable; the day stays
    planned so the scan reports it as a partition failure.
    """
    hour_windows: List[Tuple[int, int]] = []
    for predicate in spec.where:
        if predicate.column != "hour":
            continue
        if predicate.op == "range":
            hour_windows.append((predicate.values[0], predicate.values[1]))
        else:
            hour_windows.append(
                (predicate.values[0], predicate.values[-1])
            )
    # Physical columns carry zone maps in every sidecar; derived keys
    # (service_port, transport) use the seal-time derived_zones block,
    # absent from old sidecars — partition.zone() then returns None and
    # the day simply stays planned.
    zone_predicates = [
        p for p in spec.where
        if p.column in COLUMNS or p.column in DERIVED_KEYS
    ]
    projected = (
        spec.referenced_columns() if colstore.enabled()
        else tuple(COLUMNS)
    )
    # v1 archives store every column; a projected scan still reads the
    # whole file, but the *useful* bytes — what v2/v3 estimates count —
    # are the projected fraction of the row width.
    row_width = sum(dtype.itemsize for dtype in COLUMNS.values())
    projected_fraction = (
        sum(COLUMNS[name].itemsize for name in projected) / row_width
        if row_width else 1.0
    )
    sidecar_ok = colstore.enabled() and _sidecar_answerable(spec)
    days: List[_dt.date] = []
    pruned_out_of_range = 0
    pruned_empty = 0
    pruned_by_hour = 0
    pruned_by_zone = 0
    sidecar_days = 0
    estimated_bytes = 0
    day_strategies: List[str] = []
    present = set()
    for day in store.days():
        present.add(day)
        if not spec.start <= day <= spec.end:
            pruned_out_of_range += 1
            continue
        if store.day_flows(day) == 0:
            pruned_empty += 1
            continue
        day_start = timebase.hour_index(day, 0)
        day_stop = day_start + 24
        if any(hi < day_start or lo >= day_stop for lo, hi in hour_windows):
            pruned_by_hour += 1
            continue
        partition = None
        if store.partition_format(day) != FORMAT_V1:
            try:
                partition = store.open_partition(day)
            except FlowStoreError:
                partition = None
        if partition is not None and any(
            _zone_disjoint(partition, p) for p in zone_predicates
        ):
            pruned_by_zone += 1
            continue
        days.append(day)
        if partition is None:
            estimated_bytes += int(
                store.partition_disk_bytes(day) * projected_fraction
            )
            day_strategies.append("full")
        elif sidecar_ok:
            sidecar_days += 1
            day_strategies.append("sidecar")
        else:
            strategy, day_bytes = _partition_strategy(partition, spec)
            estimated_bytes += day_bytes
            day_strategies.append(strategy)
    missing = tuple(
        day
        for day in timebase.iter_days(spec.start, spec.end)
        if day not in present
    )
    return QueryPlan(
        spec=spec,
        days=tuple(days),
        missing_days=missing,
        pruned_out_of_range=pruned_out_of_range,
        pruned_empty=pruned_empty,
        pruned_by_hour=pruned_by_hour,
        pruned_by_zone=pruned_by_zone,
        columns=projected,
        sidecar_days=sidecar_days,
        estimated_bytes=estimated_bytes,
        day_strategies=tuple(day_strategies),
    )


def _plan_summary(plan: QueryPlan) -> Dict[str, object]:
    """The plan condensed for result diagnostics and slow-query logs."""
    return {
        "partitions": len(plan.days),
        "pruned": {
            "out_of_range": plan.pruned_out_of_range,
            "empty": plan.pruned_empty,
            "by_hour": plan.pruned_by_hour,
            "by_zone": plan.pruned_by_zone,
        },
        "missing_days": len(plan.missing_days),
        "columns": list(plan.columns),
        "sidecar_days": plan.sidecar_days,
        "estimated_bytes": plan.estimated_bytes,
        "strategies": plan.strategy_counts(),
    }


# -- partition scans ---------------------------------------------------------


def _predicate_mask(table: FlowTable, spec: QuerySpec) -> np.ndarray:
    """One boolean row mask combining every pushed-down predicate."""
    mask = np.ones(len(table), dtype=bool)
    for predicate in spec.where:
        keys = table.key_array(predicate.column)
        if predicate.op == "range":
            lo, hi = predicate.values
            mask &= (keys >= lo) & (keys <= hi)
        elif len(predicate.values) == 1:
            mask &= keys == predicate.values[0]
        else:
            mask &= np.isin(keys, np.asarray(predicate.values))
        if not mask.any():
            break
    return mask


def _group_layout(
    table: FlowTable, keys: Sequence[str]
) -> Tuple[GroupIndex, List[np.ndarray]]:
    """A combined :class:`GroupIndex` over ``keys`` plus decoded values.

    Mixed-radix composition of the per-key code arrays (never tuple
    keys); the returned list holds, per key, the actual key value of
    each combined group.
    """
    indexes = [table.group_index(key) for key in keys]
    combined = indexes[0].codes
    radices: List[int] = []
    for index in indexes[1:]:
        radix = max(index.n_groups, 1)
        combined = combined * radix + index.codes
        radices.append(radix)
    layout = GroupIndex.from_values(combined)
    codes = layout.values.copy()
    decoded_rev: List[np.ndarray] = []
    for index, radix in zip(reversed(indexes[1:]), reversed(radices)):
        decoded_rev.append(index.values[(codes % radix).astype(np.intp)])
        codes //= radix
    decoded_rev.append(indexes[0].values[codes.astype(np.intp)])
    return layout, list(reversed(decoded_rev))


def _scan_sidecar(
    partition: colstore.ColumnarPartition, day: _dt.date, spec: QuerySpec
) -> Tuple[Sums, Sketches, ScanStats]:
    """Answer one partition from sidecar pre-aggregates (no row I/O).

    Only reached for specs :func:`_sidecar_answerable` accepts.  The
    pre-aggregates are exact int64 totals computed at write time by the
    same grouping machinery the row scan uses, so the emitted groups
    and values — and the ``rows_scanned``/``rows_matched`` diagnostics
    — are bit-identical to a full scan's.
    """
    day_start, byte_bins, flow_bins = partition.hour_preaggregates()
    hours = day_start + np.arange(len(flow_bins), dtype=np.int64)
    mask = np.ones(len(flow_bins), dtype=bool)
    for predicate in spec.where:
        if predicate.op == "range":
            lo, hi = predicate.values
            mask &= (hours >= lo) & (hours <= hi)
        elif len(predicate.values) == 1:
            mask &= hours == predicate.values[0]
        else:
            mask &= np.isin(hours, np.asarray(predicate.values))
    rows_matched = int(flow_bins[mask].sum())
    obs.counter("query.sidecar-served").inc()
    stats = ScanStats(
        rows_scanned=partition.rows,
        rows_matched=rows_matched,
        bytes_read=0,
        columns=(),
        mode="sidecar",
    )
    sums: Sums = {}
    if rows_matched == 0:
        return sums, {}, stats

    def _values(n_bytes: int, n_flows: int) -> Dict[str, int]:
        return {
            aggregate: n_bytes if aggregate == "bytes" else n_flows
            for aggregate in spec.aggregates
        }

    if spec.bucket == "hour":
        # A row scan only materializes groups with matching rows, so
        # emit only hours that actually saw flows.
        for idx in np.nonzero(mask & (flow_bins > 0))[0]:
            sums[(int(hours[idx]),)] = _values(
                int(byte_bins[idx]), int(flow_bins[idx])
            )
    else:
        group = (day.toordinal(),) if spec.bucket == "day" else ()
        sums[group] = _values(int(byte_bins[mask].sum()), rows_matched)
    return sums, {}, stats


def scan_partition(
    store: FlowStore, day: _dt.date, spec: QuerySpec
) -> Tuple[Sums, Sketches, ScanStats]:
    """Scan one partition into partial aggregates.

    Returns ``(sums, sketches, stats)``.  Group tuples carry the bucket
    value first (absolute hour index, or the day's ordinal for day
    bucketing), then the group-by key values.

    With the colstore enabled, a v2/v3 partition is answered from
    sidecar pre-aggregates when possible; otherwise the cost model
    (:func:`_partition_strategy`) picks between the v3 predicate-first
    scan — bitmap/dictionary-code filtering, then gathering only the
    surviving rows — and a memory-mapped projection of
    :meth:`QuerySpec.referenced_columns` filtered through a row mask.
    v1 partitions (and every partition under ``REPRO_NO_COLSTORE``)
    take the full-load path.  All strategies produce identical
    partials.
    """
    partition = store.open_partition(day) if colstore.enabled() else None
    if partition is not None and _sidecar_answerable(spec):
        return _scan_sidecar(partition, day, spec)
    prefiltered = False
    if partition is not None:
        strategy, _ = _partition_strategy(partition, spec)
        if strategy == "bitmap":
            columns = _materialize_columns(spec)
            table, bytes_read = partition.load_filtered(
                spec.where, columns
            )
            mode = "bitmap"
            prefiltered = True
            obs.counter("query.bitmap-scans").inc()
        else:
            columns = spec.referenced_columns()
            table, bytes_read = partition.load(columns)
            mode = "mmap"
    else:
        table = store.read_day(day)
        columns = tuple(COLUMNS)
        bytes_read = sum(
            int(table.column(name).nbytes) for name in columns
        )
        mode = "full"
    if prefiltered:
        rows_scanned = partition.rows
    else:
        rows_scanned = len(table)
        mask = _predicate_mask(table, spec) if spec.where else None
        if mask is not None:
            table = table.filter(mask)
    rows_matched = len(table)

    def _stats() -> ScanStats:
        return ScanStats(
            rows_scanned=rows_scanned,
            rows_matched=rows_matched,
            bytes_read=bytes_read,
            columns=columns,
            mode=mode,
        )

    sums: Sums = {}
    sketches: Sketches = {}
    if rows_matched == 0:
        return sums, sketches, _stats()
    day_ordinal = day.toordinal()
    keys: List[str] = []
    if spec.bucket == "hour":
        keys.append("hour")
    keys.extend(spec.group_by)
    if keys:
        layout, decoded = _group_layout(table, keys)
    else:
        # One group covering the whole partition.
        layout = GroupIndex.from_values(
            np.zeros(rows_matched, dtype=np.int64)
        )
        decoded = []
    exact_sums: Dict[str, np.ndarray] = {}
    for aggregate in spec.aggregates:
        if aggregate == "flows":
            exact_sums[aggregate] = layout.counts()
        elif aggregate in EXACT_AGGREGATE_COLUMNS:
            exact_sums[aggregate] = layout.sum(
                table.column(EXACT_AGGREGATE_COLUMNS[aggregate])
            )
    sketch_columns = {
        aggregate: table.column(
            "src_ip" if aggregate == "distinct_src_ips" else "dst_ip"
        )
        for aggregate in spec.aggregates
        if aggregate in SKETCH_AGGREGATES
    }
    segment_ends = np.append(layout.starts[1:], layout.n_rows)
    for g in range(layout.n_groups):
        group: Tuple[int, ...] = tuple(
            int(values[g]) for values in decoded
        )
        if spec.bucket == "day":
            group = (day_ordinal,) + group
        sums[group] = {
            aggregate: int(values[g])
            for aggregate, values in exact_sums.items()
        }
        if sketch_columns:
            segment = layout.order[layout.starts[g]:segment_ends[g]]
            group_sketches: Dict[str, HyperLogLog] = {}
            for aggregate, column in sketch_columns.items():
                sketch = HyperLogLog(p=spec.hll_p)
                sketch.add_many(column[segment])
                group_sketches[aggregate] = sketch
            sketches[group] = group_sketches
    return sums, sketches, _stats()


def _merge_partial(
    total_sums: Sums,
    total_sketches: Sketches,
    sums: Sums,
    sketches: Sketches,
) -> None:
    """Fold one partition's partials into the accumulators (in place)."""
    for group, values in sums.items():
        accumulator = total_sums.setdefault(group, {})
        for aggregate, value in values.items():
            accumulator[aggregate] = accumulator.get(aggregate, 0) + value
    for group, group_sketches in sketches.items():
        accumulator_sketches = total_sketches.setdefault(group, {})
        for aggregate, sketch in group_sketches.items():
            existing = accumulator_sketches.get(aggregate)
            if existing is None:
                accumulator_sketches[aggregate] = sketch
            else:
                existing.union_update(sketch)


def _finalize(
    spec: QuerySpec,
    plan: QueryPlan,
    total_sums: Sums,
    total_sketches: Sketches,
    failures: List[PartitionFailure],
    scanned: int,
    rows_scanned: int,
    rows_matched: int,
    bytes_read: int,
    columns_loaded: Tuple[str, ...],
    t0: float,
) -> QueryResult:
    """Assemble sorted result rows from the merged accumulators."""
    key_names = spec.key_names
    rows: List[Dict[str, object]] = []
    for group in sorted(set(total_sums) | set(total_sketches)):
        row: Dict[str, object] = {}
        for name, value in zip(key_names, group):
            if name == "day":
                row[name] = _dt.date.fromordinal(value).isoformat()
            else:
                row[name] = value
        values = total_sums.get(group, {})
        group_sketches = total_sketches.get(group, {})
        for aggregate in spec.aggregates:
            if aggregate in SKETCH_AGGREGATES:
                sketch = group_sketches.get(aggregate)
                row[aggregate] = (
                    int(round(sketch.count())) if sketch is not None else 0
                )
            else:
                row[aggregate] = values.get(aggregate, 0)
        rows.append(row)
    uses_sketches = any(a in SKETCH_AGGREGATES for a in spec.aggregates)
    return QueryResult(
        fingerprint=spec.fingerprint(),
        vantage=spec.vantage,
        key_names=key_names,
        aggregates=spec.aggregates,
        rows=rows,
        partitions_planned=len(plan.days),
        partitions_scanned=scanned,
        partitions_pruned=plan.n_pruned,
        partitions_failed=failures,
        rows_scanned=rows_scanned,
        rows_matched=rows_matched,
        bytes_read=bytes_read,
        columns_loaded=columns_loaded,
        hll_error=(
            HyperLogLog(p=spec.hll_p).relative_error()
            if uses_sketches else 0.0
        ),
        wall_s=time.perf_counter() - t0,
    )


def _timed_scan(
    store: FlowStore, day: _dt.date, spec: QuerySpec
) -> Tuple[Tuple[Sums, Sketches, ScanStats], float]:
    """One partition scan plus its wall time (for stage accounting)."""
    t0 = time.perf_counter()
    outcome = scan_partition(store, day, spec)
    return outcome, time.perf_counter() - t0


def execute_plan(
    store: FlowStore,
    plan: QueryPlan,
    pool: Optional[object] = None,
    deadline: Optional[float] = None,
    cancel: Optional[Event] = None,
    plan_s: float = 0.0,
) -> QueryResult:
    """Run a plan, merging per-partition partials as they complete.

    ``pool`` scans partitions concurrently.  A plain executor runs one
    partition per task (each worker handles whole partitions, so
    partials stay thread-local until the single-threaded merge); a
    :class:`repro.query.procpool.ScanPool` — anything exposing
    ``submit_shard`` — takes the scatter-gather path instead: the
    plan's days are split into contiguous shards, each shard is
    scanned and pre-merged inside a worker (a separate process when
    the platform allows), and only the compact merged partials cross
    back for the final fold.  ``deadline`` is a ``time.monotonic()``
    timestamp enforced between partitions — on expiry pending scans
    are cancelled and :class:`QueryTimeout` is raised.  ``cancel``
    aborts the same way with :class:`QueryCancelled`.

    ``plan_s`` is the planning wall time measured by the caller (zero
    when the plan was built out of band); it flows into the result's
    ``stages`` breakdown together with the per-partition scan walls
    (``scan``), the accumulated partial-merge plus finalize wall
    (``merge``), and stage timers on the registry.  The per-query span
    carries ``scan``/``merge`` child spans, so a traced run shows one
    tree per query.
    """
    spec = plan.spec
    t0 = time.perf_counter()
    registry = obs.get_registry()
    total_sums: Sums = {}
    total_sketches: Sketches = {}
    failures: List[PartitionFailure] = []
    scanned = 0
    rows_scanned = 0
    rows_matched = 0
    bytes_read = 0
    scan_s = 0.0
    merge_s = 0.0
    columns_loaded: set = set()

    def _check_interrupts() -> None:
        if cancel is not None and cancel.is_set():
            raise QueryCancelled(f"query {spec.describe()} cancelled")
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeout(
                f"query {spec.describe()} exceeded its deadline after "
                f"{scanned}/{len(plan.days)} partitions"
            )

    def _absorb(day: _dt.date, outcome, error: Optional[str]) -> None:
        nonlocal scanned, rows_scanned, rows_matched, bytes_read, merge_s
        if error is not None:
            failures.append(PartitionFailure(day.isoformat(), error))
            registry.counter("query.partitions-failed").inc()
            return
        sums, sketches, stats = outcome
        t_merge = time.perf_counter()
        _merge_partial(total_sums, total_sketches, sums, sketches)
        merge_s += time.perf_counter() - t_merge
        scanned += 1
        rows_scanned += stats.rows_scanned
        rows_matched += stats.rows_matched
        bytes_read += stats.bytes_read
        columns_loaded.update(stats.columns)
        registry.counter("query.partitions-scanned").inc()

    def _absorb_shard(outcome) -> None:
        nonlocal scanned, rows_scanned, rows_matched, bytes_read
        nonlocal merge_s, scan_s
        t_merge = time.perf_counter()
        _merge_partial(
            total_sums, total_sketches, outcome.sums, outcome.sketches
        )
        merge_s += time.perf_counter() - t_merge
        scanned += outcome.n_scanned
        rows_scanned += outcome.rows_scanned
        rows_matched += outcome.rows_matched
        bytes_read += outcome.bytes_read
        scan_s += outcome.scan_s
        columns_loaded.update(outcome.columns)
        for day_iso, error in outcome.failures:
            failures.append(PartitionFailure(day_iso, error))
            registry.counter("query.partitions-failed").inc()
        if outcome.n_scanned:
            registry.counter(
                "query.partitions-scanned"
            ).inc(outcome.n_scanned)
        pool.note_outcome(outcome)

    def _run_sharded() -> None:
        """Scatter contiguous day shards across the pool's workers."""
        from repro.query import procpool

        shards = procpool.shard_days(plan.days, getattr(pool, "width", 1))
        futures = {
            pool.submit_shard(store, shard, spec): shard
            for shard in shards
        }
        pending = set(futures)
        try:
            while pending:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                done, pending = wait(
                    pending, timeout=remaining,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    raise QueryTimeout(
                        f"query {spec.describe()} exceeded its deadline "
                        f"after {scanned}/{len(plan.days)} partitions"
                    )
                for future in done:
                    shard = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        # A worker that died (or a payload that failed
                        # to cross the pipe) fails its shard's days as
                        # partition failures, like any unreadable
                        # partition.
                        for day in shard:
                            _absorb(
                                day, None,
                                f"{type(exc).__name__}: {exc}",
                            )
                    else:
                        _absorb_shard(outcome)
                if cancel is not None and cancel.is_set():
                    raise QueryCancelled(
                        f"query {spec.describe()} cancelled"
                    )
        finally:
            for future in pending:
                future.cancel()

    with obs.span(f"query/{spec.describe()}") as span:
        with obs.span("scan") as scan_span:
            if pool is None or len(plan.days) <= 1:
                for day in plan.days:
                    _check_interrupts()
                    try:
                        outcome, scan_dt = _timed_scan(store, day, spec)
                    except FlowStoreError as exc:
                        _absorb(day, None, str(exc))
                    else:
                        scan_s += scan_dt
                        _absorb(day, outcome, None)
            elif hasattr(pool, "submit_shard"):
                _run_sharded()
            else:
                futures = {
                    pool.submit(_timed_scan, store, day, spec): day
                    for day in plan.days
                }
                pending = set(futures)
                try:
                    while pending:
                        remaining = None
                        if deadline is not None:
                            remaining = max(
                                0.0, deadline - time.monotonic()
                            )
                        done, pending = wait(
                            pending, timeout=remaining,
                            return_when=FIRST_COMPLETED,
                        )
                        if not done:
                            raise QueryTimeout(
                                f"query {spec.describe()} exceeded its "
                                f"deadline after {scanned}/"
                                f"{len(plan.days)} partitions"
                            )
                        for future in done:
                            day = futures[future]
                            try:
                                outcome, scan_dt = future.result()
                            except FlowStoreError as exc:
                                _absorb(day, None, str(exc))
                            else:
                                scan_s += scan_dt
                                _absorb(day, outcome, None)
                        if cancel is not None and cancel.is_set():
                            raise QueryCancelled(
                                f"query {spec.describe()} cancelled"
                            )
                finally:
                    for future in pending:
                        future.cancel()
            scan_span.set_metric("partitions", scanned)
            scan_span.set_metric("scan_ms", round(scan_s * 1e3, 3))
        registry.counter("query.rows-scanned").inc(rows_scanned)
        registry.counter("query.rows-matched").inc(rows_matched)
        registry.counter("query.partitions-pruned").inc(plan.n_pruned)
        registry.counter("query.bytes-read").inc(bytes_read)
        registry.counter("query.columns-loaded").inc(len(columns_loaded))
        with obs.span("merge") as merge_span:
            t_finalize = time.perf_counter()
            result = _finalize(
                spec, plan, total_sums, total_sketches, failures,
                scanned, rows_scanned, rows_matched, bytes_read,
                tuple(sorted(columns_loaded)), t0,
            )
            merge_s += time.perf_counter() - t_finalize
            merge_span.set_metric("merge_ms", round(merge_s * 1e3, 3))
        result.stages.update({
            "plan": plan_s,
            "scan": scan_s,
            "merge": merge_s,
            "total": plan_s + result.wall_s,
        })
        result.plan_summary = _plan_summary(plan)
        if registry.enabled:
            registry.timer("query.stage-plan").record(plan_s)
            registry.timer("query.stage-scan").record(scan_s)
            registry.timer("query.stage-merge").record(merge_s)
        span.set_metric("partitions", scanned)
        span.set_metric("failed", len(failures))
        span.set_metric("rows", rows_matched)
        span.set_metric("groups", len(result.rows))
        span.set_metric("bytes_read", bytes_read)
        span.set_metric("plan_ms", round(plan_s * 1e3, 3))
    return result


def execute_query(
    store: FlowStore,
    spec: QuerySpec,
    pool: Optional[object] = None,
    deadline: Optional[float] = None,
    cancel: Optional[Event] = None,
) -> QueryResult:
    """Plan and execute ``spec`` against ``store`` in one call.

    ``pool`` may be a plain executor (per-partition thread scans) or a
    :class:`repro.query.procpool.ScanPool` (sharded scatter-gather,
    process-backed when available); ``None`` scans serially.  All
    three produce bit-identical results.
    """
    t0 = time.perf_counter()
    plan = plan_query(store, spec)
    plan_s = time.perf_counter() - t0
    return execute_plan(
        store, plan, pool=pool, deadline=deadline, cancel=cancel,
        plan_s=plan_s,
    )


def cached_copy(result: QueryResult) -> QueryResult:
    """A cache-hit view of ``result`` (shared rows, flagged).

    The copy gets a *fresh* ``stages`` dict — the service stamps the
    hit's own queue/total timings onto it, which must never leak into
    the cached original (or into other hits).
    """
    return replace(result, from_cache=True, stages={})
