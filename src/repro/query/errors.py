"""Typed failures of the query subsystem.

Everything the engine or service can raise deliberately derives from
:class:`QueryError`, so callers (the CLI, the JSONL batch runner, the
experiments) can distinguish "this query was bad / shed / late" from a
genuine bug and report it as a per-query outcome instead of crashing
the batch.
"""

from __future__ import annotations


class QueryError(Exception):
    """Base class: an invalid, rejected, or failed query."""


class QueryRejected(QueryError):
    """Admission control shed this query: the queue was full.

    Raised synchronously by :meth:`QueryService.submit` — a saturated
    service pushes back immediately instead of buffering without bound.
    """


class QueryTimeout(QueryError):
    """The query's deadline passed before it finished (or started)."""


class QueryCancelled(QueryError):
    """The caller cancelled the query while it was running."""
