"""The in-process query service: admission, workers, cache, telemetry.

:class:`QueryService` fronts one or more partitioned
:class:`~repro.flows.store.FlowStore`\\ s (one per vantage point) with
the machinery a shared analytics endpoint needs:

* a **bounded admission queue** — :meth:`submit` enqueues or raises
  :class:`~repro.query.errors.QueryRejected` immediately when the queue
  is full, so a saturated service sheds load instead of growing without
  bound;
* a pool of **worker threads** draining the queue, each executing
  queries through the engine with partition-level parallelism on a
  shared scan pool;
* per-query **deadlines and cancellation** — a query carries its
  deadline from submission, so time spent queued counts against it, and
  :meth:`QueryTicket.cancel` aborts between partitions;
* an **LRU result cache** keyed by ``(spec fingerprint, store state
  token)`` — equal queries served from memory until the underlying
  store changes;
* full :mod:`repro.obs` integration — ``query.*`` counters
  (submitted/served/failed/rejected/timeouts, cache hits/misses,
  partition and row traffic), a ``query.queue-depth`` gauge kept
  accurate on enqueue *and* drain, latency / queue-wait / per-stage
  timers, and one span per executed query;
* a per-query **stage breakdown** — queue wait, planning, partition
  scans, merges, and result-cache store stamped onto every result's
  ``stages`` dict — feeding an optional
  :class:`~repro.obs.slowlog.SlowQueryLog` that captures the spec,
  the plan, and the full breakdown for queries over a latency budget.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import repro.obs as obs
from repro.flows import colstore
from repro.flows.store import FlowStore
from repro.obs.slowlog import SlowQueryLog
from repro.query import engine, procpool
from repro.query.errors import QueryError, QueryRejected, QueryTimeout
from repro.query.spec import QuerySpec

PathLike = Union[str, Path]

#: Cache key: (spec fingerprint, store state token, partition I/O
#: mode).  The mode component keeps results cached under the colstore
#: path from being replayed — with their ``bytes_read`` /
#: ``columns_loaded`` diagnostics — after ``REPRO_NO_COLSTORE``
#: flips the I/O strategy, and vice versa.
CacheKey = Tuple[str, str, str]


class QueryTicket:
    """A handle on one submitted query.

    Wraps the future resolved by the worker pool plus the cancellation
    event the engine polls between partitions.
    """

    __slots__ = ("spec", "_future", "_cancel")

    def __init__(self, spec: QuerySpec, future: Future,
                 cancel: threading.Event):
        self.spec = spec
        self._future = future
        self._cancel = cancel

    def result(self, timeout: Optional[float] = None) -> engine.QueryResult:
        """Block for the outcome (raises what the query raised)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        """Cancel the query; True if it will not produce a result.

        A queued query is dropped outright; a running one is signalled
        and aborts between partitions with
        :class:`~repro.query.errors.QueryCancelled`.
        """
        self._cancel.set()
        return self._future.cancel() or not self._future.done()


@dataclass
class _Job:
    """One queued query with its admission-time context."""

    spec: QuerySpec
    future: Future
    cancel: threading.Event
    deadline: float
    enqueued_at: float = field(default_factory=time.monotonic)


@dataclass
class ServiceStats:
    """Lifetime counters of one service (mirrored into ``query.*``)."""

    submitted: int = 0
    served: int = 0
    failed: int = 0
    rejected: int = 0
    timeouts: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    max_queue_depth: int = 0
    slow: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "served": self.served,
            "failed": self.failed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "max_queue_depth": self.max_queue_depth,
            "slow": self.slow,
        }


class QueryService:
    """A concurrent analytics endpoint over per-vantage flow stores."""

    def __init__(
        self,
        stores: Mapping[str, Union[FlowStore, PathLike]],
        workers: int = 4,
        queue_capacity: int = 64,
        default_timeout: float = 30.0,
        cache_entries: int = 128,
        slow_log: Optional[SlowQueryLog] = None,
        scan_procs: int = 0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if scan_procs < 0:
            raise ValueError("scan_procs must be >= 0")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if not stores:
            raise ValueError("the service needs at least one store")
        self._stores: Dict[str, FlowStore] = {
            name: store if isinstance(store, FlowStore) else FlowStore(store)
            for name, store in stores.items()
        }
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.default_timeout = default_timeout
        self._queue: "_queue.Queue[Optional[_Job]]" = _queue.Queue(
            maxsize=queue_capacity
        )
        self._cache: "OrderedDict[CacheKey, engine.QueryResult]" = \
            OrderedDict()
        self._cache_entries = cache_entries
        self.slow_log = slow_log
        self._lock = threading.Lock()
        self.stats = ServiceStats()
        self._closed = False
        self._scan_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="query-scan"
        )
        # With scan_procs > 0, partition scans scatter-gather across a
        # persistent shard pool (processes when the platform allows,
        # threads otherwise) shared by every worker; the thread scan
        # pool above still serves as the explicit-thread path.
        self._shard_pool = (
            procpool.make_scan_pool(scan_procs) if scan_procs else None
        )
        self.scan_procs = scan_procs
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"query-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Drain the queue, stop the workers, release the scan pools.

        Queries already queued still execute; new submissions raise.
        The shard pool (if any) is closed without waiting on scans
        abandoned by timed-out or cancelled queries — its close
        terminates worker processes that outlive the grace period, so
        a scan sleeping past its deadline cannot leave zombies.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join()
        self._scan_pool.shutdown(wait=True)
        if self._shard_pool is not None:
            self._shard_pool.close()

    # -- stores -------------------------------------------------------------

    def store(self, vantage: str) -> FlowStore:
        """The store serving ``vantage`` (KeyError if unknown)."""
        return self._stores[vantage]

    @property
    def vantages(self) -> Tuple[str, ...]:
        return tuple(sorted(self._stores))

    # -- submission ---------------------------------------------------------

    def submit(
        self, spec: QuerySpec, timeout: Optional[float] = None
    ) -> QueryTicket:
        """Enqueue one query; returns a ticket or raises.

        Raises :class:`QueryError` for unknown vantages and
        :class:`QueryRejected` when the admission queue is full.  The
        deadline starts now — queue wait counts against it.
        """
        if self._closed:
            raise QueryError("the query service is closed")
        if spec.vantage not in self._stores:
            raise QueryError(
                f"unknown vantage {spec.vantage!r}; the service has "
                f"{list(self.vantages)}"
            )
        registry = obs.get_registry()
        job = _Job(
            spec=spec,
            future=Future(),
            cancel=threading.Event(),
            deadline=time.monotonic() + (
                timeout if timeout is not None else self.default_timeout
            ),
        )
        try:
            self._queue.put_nowait(job)
        except _queue.Full:
            with self._lock:
                self.stats.rejected += 1
            registry.counter("query.rejected").inc()
            raise QueryRejected(
                f"admission queue full ({self.queue_capacity} queries "
                f"queued); retry later or raise queue_capacity"
            ) from None
        depth = self._queue.qsize()
        with self._lock:
            self.stats.submitted += 1
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, depth
            )
        registry.counter("query.submitted").inc()
        # inc/dec (not .set(qsize())) keeps the gauge consistent under
        # concurrent submitters and drainers: every successful enqueue
        # adds one, every dequeue in _worker_loop subtracts one.
        registry.gauge("query.queue-depth").inc()
        return QueryTicket(spec, job.future, job.cancel)

    def run(
        self, spec: QuerySpec, timeout: Optional[float] = None
    ) -> engine.QueryResult:
        """Submit and block for the result (one-shot convenience)."""
        return self.submit(spec, timeout=timeout).result()

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        registry = obs.get_registry()
        while True:
            job = self._queue.get()
            if job is None:
                return
            registry.gauge("query.queue-depth").dec()
            if not job.future.set_running_or_notify_cancel():
                with self._lock:
                    self.stats.cancelled += 1
                registry.counter("query.cancelled").inc()
                continue
            wait_s = time.monotonic() - job.enqueued_at
            registry.histogram("query.queue-wait").record(wait_s)
            try:
                result = self._execute(job)
            except QueryTimeout as exc:
                with self._lock:
                    self.stats.timeouts += 1
                    self.stats.failed += 1
                registry.counter("query.timeouts").inc()
                registry.counter("query.failed").inc()
                total_s = time.monotonic() - job.enqueued_at
                self._log_slow(
                    job, total_s, wait_s, stages=None, result=None,
                    status="timeout", error=str(exc),
                )
                job.future.set_exception(exc)
            except BaseException as exc:  # noqa: BLE001 — relayed
                with self._lock:
                    self.stats.failed += 1
                registry.counter("query.failed").inc()
                job.future.set_exception(exc)
            else:
                with self._lock:
                    self.stats.served += 1
                registry.counter("query.served").inc()
                total_s = time.monotonic() - job.enqueued_at
                registry.timer("query.latency").record(total_s)
                stages = self._stamp_stages(result, wait_s, total_s)
                self._log_slow(
                    job, total_s, wait_s, stages=stages, result=result,
                    status="ok",
                )
                job.future.set_result(result)

    @staticmethod
    def _stamp_stages(
        result: engine.QueryResult, wait_s: float, total_s: float
    ) -> Dict[str, float]:
        """Complete the result's stage breakdown with service timings.

        The engine fills plan/scan/merge (zeroed here for cache hits,
        whose copies start with empty stages); the service owns queue
        wait, the cache-store wall, and the end-to-end total.
        """
        stages = {
            "plan": 0.0, "scan": 0.0, "merge": 0.0, "cache_store": 0.0,
        }
        stages.update(getattr(result, "stages", None) or {})
        stages["queue"] = wait_s
        stages["total"] = total_s
        result.stages = stages
        return stages

    def _log_slow(
        self,
        job: _Job,
        total_s: float,
        wait_s: float,
        stages: Optional[Dict[str, float]],
        result: Optional[engine.QueryResult],
        status: str,
        error: Optional[str] = None,
    ) -> None:
        """Write one slow-log entry when the query is over budget."""
        log = self.slow_log
        if log is None or not log.should_log(total_s):
            return
        if stages is None:
            stages = {
                "plan": 0.0, "scan": 0.0, "merge": 0.0,
                "cache_store": 0.0, "queue": wait_s, "total": total_s,
            }
        entry: Dict[str, object] = {
            "status": status,
            "fingerprint": job.spec.fingerprint(),
            "vantage": job.spec.vantage,
            "query": job.spec.describe(),
            "spec": job.spec.to_dict(),
            "stages": {k: round(v, 6) for k, v in sorted(stages.items())},
        }
        if result is not None:
            entry["plan"] = result.plan_summary
            entry["rows"] = len(result.rows)
            entry["rows_scanned"] = result.rows_scanned
            entry["bytes_read"] = result.bytes_read
            entry["from_cache"] = result.from_cache
        if error is not None:
            entry["error"] = error
        if log.record(total_s, entry):
            with self._lock:
                self.stats.slow += 1
            obs.get_registry().counter("query.slow").inc()

    def _execute(self, job: _Job) -> engine.QueryResult:
        registry = obs.get_registry()
        if time.monotonic() > job.deadline:
            raise QueryTimeout(
                f"query {job.spec.describe()} spent its whole deadline "
                f"in the admission queue"
            )
        store = self._stores[job.spec.vantage]
        key = (
            job.spec.fingerprint(), store.state_token(),
            colstore.mode_token(),
        )
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.stats.cache_hits += 1
        if cached is not None:
            registry.counter("query.cache-hits").inc()
            return engine.cached_copy(cached)
        with self._lock:
            self.stats.cache_misses += 1
        registry.counter("query.cache-misses").inc()
        result = engine.execute_query(
            store, job.spec, pool=self._shard_pool or self._scan_pool,
            deadline=job.deadline, cancel=job.cancel,
        )
        t_store = time.monotonic()
        with self._lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_entries:
                self._cache.popitem(last=False)
        store_s = time.monotonic() - t_store
        result.stages["cache_store"] = store_s
        registry.timer("query.stage-cache-store").record(store_s)
        registry.gauge("query.cache-entries").set(len(self._cache))
        return result

    # -- introspection ------------------------------------------------------

    @property
    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)

    def describe(self) -> Dict[str, object]:
        """Service configuration + lifetime stats (manifest-ready)."""
        info: Dict[str, object] = {
            "name": "query-service",
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "default_timeout": self.default_timeout,
            "cache_entries": self._cache_entries,
            "vantages": list(self.vantages),
            "scan_pool": (
                self._shard_pool.describe()
                if self._shard_pool is not None
                else {"kind": "thread", "width": self.workers}
            ),
            "stats": self.stats.to_dict(),
        }
        if self.slow_log is not None:
            info["slow_log"] = self.slow_log.describe()
        return info
