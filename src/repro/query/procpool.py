"""Process-based scatter-gather execution for partition scans.

The GIL caps what the thread pool can win on scan-heavy queries: the
numpy kernels release it, but group decoding and partial merging are
Python-level work that serializes across threads.  This module runs
whole *shards* — contiguous runs of day partitions from one vantage
store — in a persistent pool of worker processes instead.  Each worker
opens the store through a per-process verified cache
(:func:`repro.flows.store.open_cached`), memory-maps v2 partitions
locally (fork + mmap = shared page cache, zero copy), scans every day
in its shard with the same :func:`repro.query.engine.scan_partition`
the serial path uses, and folds the per-day partials with the same
associative merge.  Only the compact merged partials — exact int64
sums and HyperLogLog registers — ever cross the process boundary;
row data never does.

Pool selection is fork-server aware: ``fork`` is preferred (cheapest
start, inherits the parent's imports), then ``forkserver``; platforms
with neither (``spawn``-only) and the ``REPRO_NO_PROCPOOL=1`` escape
hatch fall back *gracefully* to a thread-backed pool running the exact
same shard tasks, so results stay bit-identical in every mode.

Lifecycle: pools are persistent — create one per service or sweep and
reuse it across queries; worker processes spawn lazily on first
submit.  :meth:`ScanPool.close` shuts down without waiting for
abandoned scans and, for process pools, terminates workers that
outlive the grace period, so a query timeout can never leak zombie
workers.
"""

from __future__ import annotations

import datetime as _dt
import os
import pickle
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.flows.store import FlowStore, FlowStoreError, open_cached
from repro.query.spec import QuerySpec

#: Set to any non-empty value to disable process pools; shard execution
#: falls back to threads (same tasks, same results, no fork).
DISABLE_ENV = "REPRO_NO_PROCPOOL"

#: Override the multiprocessing start method (``fork`` | ``forkserver``).
START_ENV = "REPRO_PROCPOOL_START"

#: Start methods the pool will use, in preference order.  ``spawn`` is
#: deliberately absent: re-importing the world per worker costs more
#: than the thread fallback saves on the platforms that require it.
_START_METHODS = ("fork", "forkserver")


def enabled() -> bool:
    """Whether process pools are allowed (escape hatch unset)."""
    return not os.environ.get(DISABLE_ENV)


def start_method() -> Optional[str]:
    """The start method a process pool would use, or ``None``.

    Honors ``REPRO_PROCPOOL_START`` when it names an available method;
    otherwise picks the first of :data:`_START_METHODS` the platform
    supports.  ``None`` means process pools are unavailable here and
    :func:`make_scan_pool` will hand back the thread fallback.
    """
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    preferred = os.environ.get(START_ENV)
    if preferred in _START_METHODS and preferred in available:
        return preferred
    for method in _START_METHODS:
        if method in available:
            return method
    return None


def processes_supported() -> bool:
    """Whether a real process pool can run on this platform."""
    return enabled() and start_method() is not None


@dataclass
class ShardOutcome:
    """One shard's merged partials plus diagnostics, shipped back whole.

    ``sums``/``sketches`` are already merged across the shard's days,
    so the parent performs one associative fold per shard instead of
    one per partition.  ``ipc_bytes`` is the pickled size of the data
    payload, measured worker-side — what actually crossed the pipe.
    """

    sums: Dict[Tuple[int, ...], Dict[str, int]]
    sketches: Dict[Tuple[int, ...], Dict[str, object]]
    n_scanned: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0
    bytes_read: int = 0
    columns: Tuple[str, ...] = ()
    failures: List[Tuple[str, str]] = field(default_factory=list)
    scan_s: float = 0.0
    worker_pid: int = 0
    ipc_bytes: int = 0


def scan_shard(
    root: str, day_isos: Sequence[str], spec: QuerySpec
) -> ShardOutcome:
    """Worker-side shard scan: open, scan, merge, ship partials.

    Top-level so it pickles by reference.  The store open goes through
    the per-process :func:`~repro.flows.store.open_cached` cache —
    after the first shard each worker reuses its verified manifest and
    sidecar state.  Per-day failures are data (day, error) rather than
    exceptions, matching the serial path's partition-failure handling;
    a store that cannot open at all fails every day in the shard.
    """
    from repro.query import engine

    t0 = time.perf_counter()
    outcome = ShardOutcome(sums={}, sketches={}, worker_pid=os.getpid())
    try:
        store = open_cached(root)
    except FlowStoreError as exc:
        outcome.failures = [(iso, str(exc)) for iso in day_isos]
        outcome.scan_s = time.perf_counter() - t0
        return outcome
    columns: set = set()
    for iso in day_isos:
        day = _dt.date.fromisoformat(iso)
        try:
            sums, sketches, stats = engine.scan_partition(store, day, spec)
        except FlowStoreError as exc:
            outcome.failures.append((iso, str(exc)))
            continue
        engine._merge_partial(outcome.sums, outcome.sketches, sums, sketches)
        outcome.n_scanned += 1
        outcome.rows_scanned += stats.rows_scanned
        outcome.rows_matched += stats.rows_matched
        outcome.bytes_read += stats.bytes_read
        columns.update(stats.columns)
    outcome.columns = tuple(sorted(columns))
    outcome.scan_s = time.perf_counter() - t0
    outcome.ipc_bytes = len(
        pickle.dumps((outcome.sums, outcome.sketches),
                     protocol=pickle.HIGHEST_PROTOCOL)
    )
    return outcome


def shard_days(
    days: Sequence[_dt.date], width: int
) -> List[Tuple[_dt.date, ...]]:
    """Split planned days into contiguous shards for ``width`` workers.

    Shards are contiguous date runs (locality: neighboring partitions
    share directory and page-cache footprint) and there are up to two
    per worker, so an uneven store still balances without shipping one
    partial per partition.
    """
    days = list(days)
    if not days:
        return []
    n_shards = max(1, min(len(days), 2 * max(1, width)))
    base, extra = divmod(len(days), n_shards)
    shards: List[Tuple[_dt.date, ...]] = []
    at = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        shards.append(tuple(days[at:at + size]))
        at += size
    return shards


class ScanPool:
    """A persistent shard-scan pool; process-backed when possible.

    ``kind`` is ``"process"`` or ``"thread"`` (the graceful fallback).
    The engine recognizes this interface via :meth:`submit_shard` and
    takes the scatter-gather path; anything else passed as ``pool`` is
    treated as a plain per-partition thread executor.
    """

    def __init__(self, width: int, kind: Optional[str] = None):
        self.width = max(1, int(width))
        if kind is None:
            kind = "process" if processes_supported() else "thread"
        if kind == "process" and not processes_supported():
            obs.counter("query.proc.fallbacks").inc()
            kind = "thread"
        self.kind = kind
        self.start_method = start_method() if kind == "process" else None
        if kind == "process":
            import multiprocessing

            self._executor: object = ProcessPoolExecutor(
                max_workers=self.width,
                mp_context=multiprocessing.get_context(self.start_method),
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.width, thread_name_prefix="scan-shard"
            )
        self._lock = threading.Lock()
        self._in_flight = 0
        self._outstanding: set = set()
        self._worker_scan_s: Dict[int, float] = {}
        self._closed = False
        obs.gauge("query.proc.pool-width").set(self.width)

    # -- submission --------------------------------------------------------

    def submit_shard(
        self, store: FlowStore, days: Sequence[_dt.date], spec: QuerySpec
    ) -> Future:
        """Schedule one shard scan; returns a Future of ShardOutcome."""
        return self.submit(
            scan_shard, str(store.root),
            tuple(day.isoformat() for day in days), spec,
        )

    def submit(self, fn, *args) -> Future:
        """Schedule an arbitrary task on the pool (tests, drills)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("scan pool is closed")
            future = self._executor.submit(fn, *args)
            self._outstanding.add(future)
            self._in_flight += 1
        obs.gauge("query.proc.in-flight").inc()
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: Future) -> None:
        with self._lock:
            self._outstanding.discard(future)
            self._in_flight -= 1
        obs.gauge("query.proc.in-flight").dec()

    # -- accounting --------------------------------------------------------

    def note_outcome(self, outcome: ShardOutcome) -> None:
        """Record one shard's worker-side diagnostics on the registry."""
        registry = obs.get_registry()
        registry.counter("query.proc.shards").inc()
        registry.counter("query.proc.ipc-bytes").inc(outcome.ipc_bytes)
        if registry.enabled:
            registry.timer("query.proc.shard-scan").record(outcome.scan_s)
        with self._lock:
            pid = outcome.worker_pid
            self._worker_scan_s[pid] = (
                self._worker_scan_s.get(pid, 0.0) + outcome.scan_s
            )

    def outstanding(self) -> int:
        """Futures submitted but not yet completed (saturation probe)."""
        with self._lock:
            return self._in_flight

    def worker_stats(self) -> Dict[str, float]:
        """Accumulated scan seconds per worker pid (or thread pool)."""
        with self._lock:
            return {
                str(pid): round(seconds, 6)
                for pid, seconds in sorted(self._worker_scan_s.items())
            }

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "width": self.width,
            "start_method": self.start_method,
            "in_flight": self.outstanding(),
            "worker_scan_s": self.worker_stats(),
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self, grace: float = 5.0) -> None:
        """Shut down without waiting on abandoned scans.

        Pending futures are cancelled; in-flight scans get ``grace``
        seconds to finish, after which worker processes are terminated
        outright — a scan sleeping past its query's deadline must not
        leave zombie workers behind.  Thread workers cannot be killed,
        but their results are discarded and the executor stops
        accepting work.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Snapshot worker handles before shutdown clears them.
        workers = list(
            (getattr(self._executor, "_processes", None) or {}).values()
        )
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.kind != "process":
            return
        deadline = time.monotonic() + max(0.0, grace)
        for proc in workers:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)

    def __enter__(self) -> "ScanPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_scan_pool(procs: int) -> Optional[ScanPool]:
    """A shard pool of ``procs`` workers, or ``None`` when ``procs<=0``.

    Process-backed when the platform allows it and ``REPRO_NO_PROCPOOL``
    is unset; otherwise the thread fallback (same interface, same
    results).
    """
    if procs <= 0:
        return None
    return ScanPool(procs)
