"""Concurrent analytics query engine and service over flow stores.

The paper's analyses — hourly volume shifts, hypergiant shares,
port/application mixes, distinct-IP "household" proxies — are all
filter → group → aggregate queries over months of per-vantage flow
captures, re-cut repeatedly per lockdown phase.  This package serves
that access pattern as a subsystem:

* :mod:`repro.query.spec` — :class:`QuerySpec`, the declarative query
  form with a canonical fingerprint;
* :mod:`repro.query.engine` — manifest-driven partition pruning,
  predicate pushdown, parallel per-partition scans, and exact/HLL
  partial-aggregate merging;
* :mod:`repro.query.procpool` — :class:`ScanPool`, the persistent
  process-backed (thread-fallback) shard pool running scatter-gather
  partition scans outside the GIL;
* :mod:`repro.query.service` — :class:`QueryService`, the bounded
  concurrent front end with per-query deadlines, cancellation, an LRU
  result cache, ``query.*`` telemetry, and ``scan_procs`` process
  scan-out.

Quickstart::

    from repro.query import QueryService, QuerySpec

    service = QueryService({"isp-ce": "/data/isp-ce-store"}, workers=4)
    spec = QuerySpec.build(
        "isp-ce", "2020-02-19", "2020-03-24",
        where={"proto": 17}, group_by=["transport"],
        aggregates=["bytes", "connections"],
    )
    result = service.run(spec)
    for row in result.rows:
        print(row)
    service.close()
"""

from repro.query.engine import (
    PartitionFailure,
    QueryPlan,
    QueryResult,
    ScanStats,
    execute_plan,
    execute_query,
    plan_query,
    scan_partition,
)
from repro.query.errors import (
    QueryCancelled,
    QueryError,
    QueryRejected,
    QueryTimeout,
)
from repro.query.procpool import (
    ScanPool,
    ShardOutcome,
    make_scan_pool,
    shard_days,
)
from repro.query.service import (
    QueryService,
    QueryTicket,
    ServiceStats,
)
from repro.query.spec import (
    AGGREGATES,
    GROUP_KEYS,
    SKETCH_AGGREGATES,
    Predicate,
    QuerySpec,
)

__all__ = [
    "AGGREGATES",
    "GROUP_KEYS",
    "SKETCH_AGGREGATES",
    "PartitionFailure",
    "Predicate",
    "QueryCancelled",
    "QueryError",
    "QueryPlan",
    "QueryRejected",
    "QueryResult",
    "QueryService",
    "QuerySpec",
    "QueryTicket",
    "QueryTimeout",
    "ScanPool",
    "ScanStats",
    "ServiceStats",
    "ShardOutcome",
    "execute_plan",
    "execute_query",
    "make_scan_pool",
    "plan_query",
    "scan_partition",
    "shard_days",
]
