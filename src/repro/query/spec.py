"""Declarative query specifications.

A :class:`QuerySpec` names everything an analytical query needs —
vantage, inclusive date range, row predicates, group-by keys,
aggregates, and optional time bucketing — as plain data.  The paper's
analyses are all instances of this shape: hourly volume series are
``bucket="hour"`` with a ``bytes`` aggregate, the port/application
tables are ``group_by=("transport",)``, Fig 8's "order of households"
proxy is ``bucket="hour"`` with a ``distinct_dst_ips`` aggregate.

Specs are immutable and canonically serializable: :meth:`to_dict`
produces one normalized JSON form and :meth:`fingerprint` hashes it, so
two equal queries always share one cache identity regardless of how
they were written down (predicate order, list vs. set values, string
vs. date endpoints).
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.flows.table import COLUMNS, DERIVED_BASE_COLUMNS, DERIVED_KEYS
from repro.query.errors import QueryError

#: Keys a query may group rows by: every table column plus the derived
#: integer keys (``service_port``, ``transport``).
GROUP_KEYS: Tuple[str, ...] = tuple(COLUMNS) + tuple(DERIVED_KEYS)

#: Supported aggregate names.
AGGREGATES: Tuple[str, ...] = (
    "bytes",
    "packets",
    "connections",
    "flows",
    "distinct_src_ips",
    "distinct_dst_ips",
)

#: Aggregates estimated with HyperLogLog sketches (mergeable across
#: partitions; subject to the sketch's documented relative error).
SKETCH_AGGREGATES: Tuple[str, ...] = ("distinct_src_ips", "distinct_dst_ips")

#: Value column (or counting mode) behind each exact aggregate.
EXACT_AGGREGATE_COLUMNS: Mapping[str, str] = {
    "bytes": "n_bytes",
    "packets": "n_packets",
    "connections": "connections",
}

#: Physical input column behind each aggregate (``None`` means the
#: aggregate only counts rows and reads no column data).
AGGREGATE_INPUT_COLUMNS: Mapping[str, Optional[str]] = {
    "bytes": "n_bytes",
    "packets": "n_packets",
    "connections": "connections",
    "flows": None,
    "distinct_src_ips": "src_ip",
    "distinct_dst_ips": "dst_ip",
}

#: Time-bucket granularities (``None`` = one result row per group).
BUCKETS: Tuple[Optional[str], ...] = (None, "hour", "day")

#: Default HyperLogLog precision for distinct aggregates (~1.6% error).
DEFAULT_HLL_P = 12

DateLike = Union[str, _dt.date]


def _as_date(value: DateLike, name: str) -> _dt.date:
    if isinstance(value, _dt.date):
        return value
    try:
        return _dt.date.fromisoformat(str(value))
    except ValueError as exc:
        raise QueryError(f"{name} is not an ISO date: {value!r}") from exc


@dataclass(frozen=True)
class Predicate:
    """One pushed-down row predicate on an integer column or derived key.

    ``op="in"`` keeps rows whose key is one of ``values`` (sorted,
    deduplicated); ``op="range"`` keeps rows with
    ``values[0] <= key <= values[1]``.
    """

    column: str
    op: str
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.column not in GROUP_KEYS:
            raise QueryError(
                f"unknown predicate column {self.column!r}; "
                f"valid keys are {sorted(GROUP_KEYS)}"
            )
        if self.op not in ("in", "range"):
            raise QueryError(
                f"unknown predicate op {self.op!r}; use 'in' or 'range'"
            )
        if not self.values:
            raise QueryError(
                f"predicate on {self.column!r} has no values"
            )
        if any(not isinstance(v, int) or isinstance(v, bool)
               for v in self.values):
            raise QueryError(
                f"predicate values on {self.column!r} must be integers"
            )
        if self.op == "range":
            if len(self.values) != 2:
                raise QueryError(
                    f"range predicate on {self.column!r} needs exactly "
                    f"(lo, hi), got {len(self.values)} values"
                )
            if self.values[0] > self.values[1]:
                raise QueryError(
                    f"range predicate on {self.column!r} is empty: "
                    f"{self.values[0]} > {self.values[1]}"
                )
        elif tuple(sorted(set(self.values))) != self.values:
            # Canonical form is sorted + deduplicated; the constructors
            # below normalize, so reaching this means a hand-built
            # predicate would break fingerprint canonicality.
            raise QueryError(
                f"'in' predicate values on {self.column!r} must be "
                f"sorted and unique (got {self.values})"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "column": self.column,
            "op": self.op,
            "values": list(self.values),
        }


def _normalize_predicate(column: str, condition: object) -> Predicate:
    """Build one canonical predicate from a user-facing condition.

    Scalars mean equality, sequences/sets mean membership, and
    ``{"min": lo, "max": hi}`` mappings mean an inclusive range.
    """
    if isinstance(condition, Mapping):
        unknown = set(condition) - {"min", "max"}
        if unknown:
            raise QueryError(
                f"range condition on {column!r} has unknown keys "
                f"{sorted(unknown)}; use 'min'/'max'"
            )
        if "min" not in condition or "max" not in condition:
            raise QueryError(
                f"range condition on {column!r} needs both 'min' and 'max'"
            )
        return Predicate(
            column, "range",
            (int(condition["min"]), int(condition["max"])),
        )
    if isinstance(condition, (list, tuple, set, frozenset)):
        return Predicate(
            column, "in", tuple(sorted({int(v) for v in condition}))
        )
    return Predicate(column, "in", (int(condition),))


@dataclass(frozen=True)
class QuerySpec:
    """One declarative filter → group → aggregate query.

    Use :meth:`build` (keyword conditions, flexible dates) or
    :meth:`from_dict` (JSONL wire form) rather than the raw
    constructor, which expects fully canonical predicate tuples.
    """

    vantage: str
    start: _dt.date
    end: _dt.date
    where: Tuple[Predicate, ...] = ()
    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[str, ...] = ("bytes",)
    bucket: Optional[str] = None
    hll_p: int = DEFAULT_HLL_P

    def __post_init__(self) -> None:
        if not self.vantage or not isinstance(self.vantage, str):
            raise QueryError("vantage must be a non-empty string")
        if not isinstance(self.start, _dt.date) or not isinstance(
            self.end, _dt.date
        ):
            raise QueryError("start/end must be datetime.date values")
        if self.end < self.start:
            raise QueryError(
                f"query range end {self.end} precedes start {self.start}"
            )
        for key in self.group_by:
            if key not in GROUP_KEYS:
                raise QueryError(
                    f"unknown group key {key!r}; valid keys are "
                    f"{sorted(GROUP_KEYS)}"
                )
        if len(set(self.group_by)) != len(self.group_by):
            raise QueryError(f"duplicate group keys in {self.group_by}")
        if len(self.group_by) > 3:
            raise QueryError(
                "at most 3 group keys are supported (plus the time bucket)"
            )
        if not self.aggregates:
            raise QueryError("a query needs at least one aggregate")
        for aggregate in self.aggregates:
            if aggregate not in AGGREGATES:
                raise QueryError(
                    f"unknown aggregate {aggregate!r}; valid aggregates "
                    f"are {list(AGGREGATES)}"
                )
        if len(set(self.aggregates)) != len(self.aggregates):
            raise QueryError(f"duplicate aggregates in {self.aggregates}")
        if self.bucket not in BUCKETS:
            raise QueryError(
                f"unknown time bucket {self.bucket!r}; use 'hour', "
                f"'day', or omit"
            )
        if self.bucket in self.group_by:
            raise QueryError(
                f"bucket {self.bucket!r} duplicates a group key"
            )
        if not 4 <= self.hll_p <= 18:
            raise QueryError(
                f"hll_p must be in [4, 18], got {self.hll_p}"
            )

    # -- canonical serialization -------------------------------------------

    @property
    def key_names(self) -> Tuple[str, ...]:
        """Result-row key columns: the bucket (if any) then group keys."""
        bucket = (self.bucket,) if self.bucket else ()
        return bucket + self.group_by

    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON-serializable form (wire + fingerprint)."""
        return {
            "vantage": self.vantage,
            "start": self.start.isoformat(),
            "end": self.end.isoformat(),
            "where": [
                p.to_dict()
                for p in sorted(
                    self.where, key=lambda p: (p.column, p.op, p.values)
                )
            ],
            "group_by": list(self.group_by),
            "aggregates": list(self.aggregates),
            "bucket": self.bucket,
            "hll_p": self.hll_p,
        }

    def referenced_columns(self) -> Tuple[str, ...]:
        """The physical columns this query reads, in canonical order.

        The union of predicate columns, group keys, the ``hour`` column
        for hour bucketing, and each aggregate's input column — with
        derived keys (``service_port``, ``transport``) expanded into
        the base columns they are computed from.  This is the
        projection the columnar store pushes down: a v2 partition scan
        loads (and checksums) exactly these segments.  The tuple can be
        empty — a pure row count reads no column data at all.
        """
        names = set(self.group_by)
        names.update(p.column for p in self.where)
        if self.bucket == "hour":
            names.add("hour")
        physical = set()
        for name in names:
            if name in COLUMNS:
                physical.add(name)
            else:
                physical.update(DERIVED_BASE_COLUMNS[name])
        for aggregate in self.aggregates:
            column = AGGREGATE_INPUT_COLUMNS[aggregate]
            if column is not None:
                physical.add(column)
        return tuple(name for name in COLUMNS if name in physical)

    def fingerprint(self) -> str:
        """Hex digest of the canonical form — the cache identity."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable form (spans, logs, CLI output)."""
        parts = [f"{self.vantage}/{self.start}..{self.end}"]
        if self.bucket:
            parts.append(f"per-{self.bucket}")
        if self.group_by:
            parts.append("by " + ",".join(self.group_by))
        parts.append(",".join(self.aggregates))
        return " ".join(parts)

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        vantage: str,
        start: DateLike,
        end: DateLike,
        where: Optional[Mapping[str, object]] = None,
        group_by: Sequence[str] = (),
        aggregates: Sequence[str] = ("bytes",),
        bucket: Optional[str] = None,
        hll_p: int = DEFAULT_HLL_P,
    ) -> "QuerySpec":
        """The convenient constructor: keyword conditions, loose dates.

        ``where`` maps columns to a scalar (equality), a sequence
        (membership), or ``{"min": lo, "max": hi}`` (inclusive range)::

            QuerySpec.build(
                "isp-ce", "2020-02-19", "2020-03-24",
                where={"proto": 17, "service_port": [443, 4500]},
                group_by=["transport"], aggregates=["bytes"],
            )
        """
        predicates = tuple(
            _normalize_predicate(column, condition)
            for column, condition in sorted((where or {}).items())
        )
        return cls(
            vantage=vantage,
            start=_as_date(start, "start"),
            end=_as_date(end, "end"),
            where=predicates,
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
            bucket=bucket,
            hll_p=int(hll_p),
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QuerySpec":
        """Parse one wire-form query (a parsed JSONL line).

        Accepts both the canonical predicate-list ``where`` form and
        the keyword-condition mapping accepted by :meth:`build`.
        Unknown fields are an error, so typos cannot silently relax a
        query.
        """
        if not isinstance(payload, Mapping):
            raise QueryError(
                f"query must be a JSON object, got {type(payload).__name__}"
            )
        known = {
            "vantage", "start", "end", "where", "group_by",
            "aggregates", "bucket", "hll_p",
        }
        unknown = set(payload) - known
        if unknown:
            raise QueryError(
                f"unknown query fields {sorted(unknown)}; "
                f"valid fields are {sorted(known)}"
            )
        for required in ("vantage", "start", "end"):
            if required not in payload:
                raise QueryError(f"query is missing {required!r}")
        where_payload = payload.get("where") or {}
        if isinstance(where_payload, Mapping):
            predicates = tuple(
                _normalize_predicate(column, condition)
                for column, condition in sorted(where_payload.items())
            )
        elif isinstance(where_payload, Sequence):
            predicates = tuple(
                Predicate(
                    column=str(entry.get("column")),
                    op=str(entry.get("op", "in")),
                    values=tuple(int(v) for v in entry.get("values", ())),
                )
                if isinstance(entry, Mapping)
                else _raise_where(entry)
                for entry in where_payload
            )
        else:
            raise QueryError(
                "where must be a column->condition mapping or a "
                "predicate list"
            )
        return cls(
            vantage=str(payload["vantage"]),
            start=_as_date(payload["start"], "start"),
            end=_as_date(payload["end"], "end"),
            where=predicates,
            group_by=tuple(payload.get("group_by") or ()),
            aggregates=tuple(payload.get("aggregates") or ("bytes",)),
            bucket=payload.get("bucket"),
            hll_p=int(payload.get("hll_p", DEFAULT_HLL_P)),
        )


def _raise_where(entry: object) -> Predicate:
    raise QueryError(
        f"predicate entries must be objects, got {type(entry).__name__}"
    )
