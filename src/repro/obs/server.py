"""A scrape endpoint for the metrics registry (stdlib only).

:class:`MetricsServer` runs a :class:`http.server.ThreadingHTTPServer`
on a daemon thread and serves:

* ``GET /metrics`` — the current registry rendered by
  :func:`repro.obs.prom.render_registry` (Prometheus text format
  0.0.4),
* ``GET /healthz`` — a plain ``ok`` liveness probe.

The registry is resolved through a *provider* callable on every
request (default :func:`repro.obs.get_registry`), so a scrape always
sees the currently installed registry even if ``obs.configure`` swaps
it after the server starts.  ``lockdown-effect serve --metrics-port``
is the CLI face of this class.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import render_registry

#: Content type of the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve ``/metrics`` for one process; start, scrape, close."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry_provider: Optional[Callable[[], MetricsRegistry]] = None,
    ):
        if registry_provider is None:
            from repro import obs

            registry_provider = obs.get_registry
        self.host = host
        self.port = port
        self._provider = registry_provider
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port.

        ``port=0`` picks an ephemeral port — read the return value (or
        :attr:`port`, updated here) to find it.
        """
        if self._server is not None:
            return self.port
        provider = self._provider

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — stdlib casing
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    try:
                        body = render_registry(provider()).encode()
                    except Exception as exc:  # noqa: BLE001 — surfaced
                        self._reply(500, f"render failed: {exc}\n".encode())
                        return
                    self._reply(200, body, CONTENT_TYPE)
                elif path == "/healthz":
                    self._reply(200, b"ok\n")
                else:
                    self._reply(404, b"not found\n")

            def _reply(self, status: int, body: bytes,
                       content_type: str = "text/plain") -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                return None  # scrapes should not spam stderr

        self._server = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
