"""Metric instruments: counters, gauges, histograms, and timers.

The pipeline runs unattended over large synthetic traces, so the hot
paths account for themselves: flow counts, rows generated, bytes
aggregated, RNG draws, and per-experiment wall time all flow into a
process-global :class:`MetricsRegistry` (see :mod:`repro.obs`).

Well-known counter families (all created lazily on first use):

* ``flowgen.*`` — synthesis volume and RNG draw accounting,
* ``table.*`` — :class:`~repro.flows.table.FlowTable` concat/filter
  traffic,
* ``groupby.*`` — the aggregation engine's ``index-builds``,
  ``index-rows``, ``index-reuses``, and (with
  ``REPRO_NO_GROUP_INDEX`` set) ``fallbacks``,
* ``dataset-cache.*`` — memory-tier ``hits``/``misses``/``bypasses``/
  ``bytes`` plus the disk tier's ``disk-hits``/``disk-misses``/
  ``disk-writes``/``disk-bytes``,
* ``experiments.*`` — per-experiment runs and wall time.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — the real thing; instruments are created on
  first use and keyed by name, and :meth:`MetricsRegistry.snapshot`
  returns a JSON-serializable dump.
* :class:`NullRegistry` — the default; hands out shared no-op
  instruments so instrumented code pays only a couple of attribute
  lookups per call when telemetry is disabled.

Every instrument is thread-safe (the parallel executor's workers and
the query service's pool all report into one registry).  Histograms
are *bounded* streaming quantile sketches — a long-running ``serve``
process can record millions of latencies without the registry growing
past a fixed bucket table (see :class:`Histogram`).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value metric (thread-safe).

    ``set`` is last-write-wins; ``inc``/``dec`` adjust the current
    value atomically (an unset gauge counts as 0), so callers tracking
    levels — queue depth, in-flight work — never read-modify-write
    around the instrument.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge (unset counts as 0)."""
        with self._lock:
            self._value = (self._value or 0.0) + float(amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge (unset counts as 0)."""
        self.inc(-amount)

    @property
    def value(self) -> Optional[float]:
        return self._value


class Histogram:
    """A bounded streaming quantile sketch over log-scale buckets.

    Positive values land in fixed multiplicative buckets: value ``v``
    maps to index ``ceil(log(v) / log(gamma))`` with
    ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``
    (default 1%), so any quantile estimate is within ``a`` of the true
    rank value.  Count, sum, min, and max are tracked exactly; values
    ``<= 0`` share one underflow bucket (durations are the intended
    payload).  The bucket table is sparse and bounded by the *dynamic
    range* of the data — recording a billion latencies between 1 µs
    and 1 h touches ~450 buckets at 1% accuracy — never by the
    observation count, so long-running services cannot grow it without
    bound.

    Recording takes the instrument lock (a dict update, not an append
    to an ever-growing list), and sketches with equal accuracy merge
    exactly via :meth:`merge` — per-thread histograms fold into one
    with the same buckets they would have produced shared.
    """

    DEFAULT_RELATIVE_ACCURACY = 0.01

    __slots__ = ("name", "relative_accuracy", "_gamma", "_log_gamma",
                 "_buckets", "_zero_count", "_count", "_sum", "_min",
                 "_max", "_lock")

    def __init__(self, name: str,
                 relative_accuracy: Optional[float] = None):
        if relative_accuracy is None:
            relative_accuracy = self.DEFAULT_RELATIVE_ACCURACY
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError("relative_accuracy must be in (0, 1)")
        self.name = name
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        #: bucket index -> observation count (sparse).
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def _index(self, value: float) -> int:
        """Bucket index of ``value > 0``: covers ``(γ^(i-1), γ^i]``."""
        return math.ceil(math.log(value) / self._log_gamma)

    def _value_at(self, index: int) -> float:
        """Representative value of bucket ``index`` (midpoint-ish).

        ``2γ^i / (γ + 1)`` bounds the relative error at both bucket
        edges by the configured accuracy.
        """
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value > 0.0:
                index = self._index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1
            else:
                self._zero_count += 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this sketch (exactly).

        Both sketches must share one ``relative_accuracy`` (the bucket
        grids must line up); ``other`` is left untouched.
        """
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                f"cannot merge histograms with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        # Snapshot other under its own lock, then fold under ours —
        # never holding both, so concurrent cross-merges cannot
        # deadlock.
        with other._lock:
            buckets = dict(other._buckets)
            zero_count = other._zero_count
            count = other._count
            total = other._sum
            minimum = other._min
            maximum = other._max
        with self._lock:
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._zero_count += zero_count
            self._count += count
            self._sum += total
            if minimum < self._min:
                self._min = minimum
            if maximum > self._max:
                self._max = maximum

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    @property
    def mean(self) -> float:
        if not self._count:
            return float("nan")
        return self._sum / self._count

    @property
    def n_buckets(self) -> int:
        """Occupied buckets — the sketch's entire variable footprint."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate, ``0 <= q <= 1``.

        Within ``relative_accuracy`` of the exact rank value, and
        always clamped into ``[min, max]`` (so ``quantile(0)`` /
        ``quantile(1)`` are exact).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if not self._count:
            return float("nan")
        # The extremes are tracked exactly; the zero/underflow bucket
        # would otherwise answer 0.0 for q=0 when negatives were seen.
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * (self._count - 1)
        estimate = 0.0
        cumulative = self._zero_count
        if rank >= cumulative:
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if rank < cumulative:
                    estimate = self._value_at(index)
                    break
        return max(self._min, min(self._max, estimate))

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics as a JSON-serializable dict."""
        with self._lock:
            if not self._count:
                return {"count": 0}
            return {
                "count": self._count,
                "total": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "p50": self._quantile_locked(0.5),
                "p90": self._quantile_locked(0.9),
                "p99": self._quantile_locked(0.99),
            }


class _TimerContext:
    """Context manager recording one duration into a timer."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.record(time.perf_counter() - self._t0)


class Timer(Histogram):
    """A histogram of wall-clock durations in seconds."""

    __slots__ = ()

    def time(self) -> _TimerContext:
        """Context manager timing its body."""
        return _TimerContext(self)


class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._timers.setdefault(name, Timer(name))
        return instrument

    def top_counters(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` largest counters, descending by value."""
        ranked = sorted(
            ((c.name, c.value) for c in self._counters.values()),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:n]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as a JSON-serializable dict."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
            "timers": {
                name: t.snapshot() for name, t in sorted(self._timers.items())
            },
        }


class _NullContext:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None

    def inc(self, amount: float = 1.0) -> None:
        return None


class NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        return None


class NullTimer(Timer):
    __slots__ = ()

    def record(self, value: float) -> None:
        return None

    def time(self) -> _NullContext:
        return _NULL_CONTEXT


_NULL_CONTEXT = _NullContext()
_NULL_COUNTER = NullCounter("null")
_NULL_GAUGE = NullGauge("null")
_NULL_HISTOGRAM = NullHistogram("null")
_NULL_TIMER = NullTimer("null")


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, empty snapshots."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> Timer:
        return _NULL_TIMER
