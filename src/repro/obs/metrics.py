"""Metric instruments: counters, gauges, histograms, and timers.

The pipeline runs unattended over large synthetic traces, so the hot
paths account for themselves: flow counts, rows generated, bytes
aggregated, RNG draws, and per-experiment wall time all flow into a
process-global :class:`MetricsRegistry` (see :mod:`repro.obs`).

Well-known counter families (all created lazily on first use):

* ``flowgen.*`` — synthesis volume and RNG draw accounting,
* ``table.*`` — :class:`~repro.flows.table.FlowTable` concat/filter
  traffic,
* ``groupby.*`` — the aggregation engine's ``index-builds``,
  ``index-rows``, ``index-reuses``, and (with
  ``REPRO_NO_GROUP_INDEX`` set) ``fallbacks``,
* ``dataset-cache.*`` — memory-tier ``hits``/``misses``/``bypasses``/
  ``bytes`` plus the disk tier's ``disk-hits``/``disk-misses``/
  ``disk-writes``/``disk-bytes``,
* ``experiments.*`` — per-experiment runs and wall time.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — the real thing; instruments are created on
  first use and keyed by name, and :meth:`MetricsRegistry.snapshot`
  returns a JSON-serializable dump.
* :class:`NullRegistry` — the default; hands out shared no-op
  instruments so instrumented code pays only a couple of attribute
  lookups per call when telemetry is disabled.

Counters and instrument creation are thread-safe (the parallel
executor's workers all report into one registry); histogram recording
relies on the GIL's atomic ``list.append``.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing integer metric (thread-safe)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value metric (last write wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        return self._value


class Histogram:
    """A distribution metric with exact quantiles.

    Keeps every recorded value; callers recording unbounded streams
    should sample before recording.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []

    def record(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def min(self) -> float:
        return min(self._values) if self._values else float("nan")

    @property
    def max(self) -> float:
        return max(self._values) if self._values else float("nan")

    @property
    def mean(self) -> float:
        if not self._values:
            return float("nan")
        return self.total / len(self._values)

    def quantile(self, q: float) -> float:
        """Linear-interpolation quantile, ``0 <= q <= 1``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._values:
            return float("nan")
        data = sorted(self._values)
        position = q * (len(data) - 1)
        lo = math.floor(position)
        hi = math.ceil(position)
        if lo == hi:
            return data[lo]
        frac = position - lo
        return data[lo] + (data[hi] - data[lo]) * frac

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics as a JSON-serializable dict."""
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class _TimerContext:
    """Context manager recording one duration into a timer."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: "Timer"):
        self._timer = timer
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.record(time.perf_counter() - self._t0)


class Timer(Histogram):
    """A histogram of wall-clock durations in seconds."""

    __slots__ = ()

    def time(self) -> _TimerContext:
        """Context manager timing its body."""
        return _TimerContext(self)


class MetricsRegistry:
    """Named instruments, created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}
        self._create_lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._timers.setdefault(name, Timer(name))
        return instrument

    def top_counters(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` largest counters, descending by value."""
        ranked = sorted(
            ((c.name, c.value) for c in self._counters.values()),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:n]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as a JSON-serializable dict."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
            "timers": {
                name: t.snapshot() for name, t in sorted(self._timers.items())
            },
        }


class _NullContext:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        return None


class NullTimer(Timer):
    __slots__ = ()

    def record(self, value: float) -> None:
        return None

    def time(self) -> _NullContext:
        return _NULL_CONTEXT


_NULL_CONTEXT = _NullContext()
_NULL_COUNTER = NullCounter("null")
_NULL_GAUGE = NullGauge("null")
_NULL_HISTOGRAM = NullHistogram("null")
_NULL_TIMER = NullTimer("null")


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op instruments, empty snapshots."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> Timer:
        return _NULL_TIMER
