"""Run manifests: what ran, with what inputs, on which code.

A :class:`RunManifest` pins down one pipeline run well enough to
re-execute it: scenario seed, :class:`~repro.pipeline.PipelineConfig`,
git SHA, interpreter and numpy versions, per-experiment check outcomes,
the full span tree, and the metrics-registry snapshot.  It serializes
to the ``telemetry.json`` written next to ``summary.json`` by
:func:`repro.report.export.write_run`, and the CLI's ``telemetry``
subcommand pretty-prints it via :func:`format_manifest`.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

#: Version marker for the telemetry payload layout.
SCHEMA = "lockdown-effect/telemetry@1"

PathLike = Union[str, Path]


def git_sha(root: Optional[PathLike] = None) -> Optional[str]:
    """The current commit SHA, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


@dataclasses.dataclass
class RunManifest:
    """Everything needed to identify and audit one pipeline run."""

    seed: Optional[int] = None
    #: Identity of the generated world ({"name": ..., "fingerprint":
    #: ...}); empty for manifests written before scenario specs existed.
    scenario: Dict[str, object] = dataclasses.field(default_factory=dict)
    config: Dict[str, float] = dataclasses.field(default_factory=dict)
    git_sha: Optional[str] = None
    python: str = ""
    numpy: str = ""
    platform: str = ""
    created_at: float = 0.0
    experiments: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict
    )
    trace: Dict[str, object] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: How the run was executed ({"name": "parallel", "jobs": 4, ...},
    #: with a nested ``dataset_cache`` dict carrying the cache stats —
    #: including the disk tier's ``disk_*`` counters and ``cache_dir``
    #: when ``run --cache-dir`` was active); empty for manifests
    #: written before the executor existed.
    executor: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation."""
        payload = dataclasses.asdict(self)
        payload["schema"] = SCHEMA
        return payload

    def write(self, path: PathLike) -> Path:
        """Serialize to ``path`` as JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        """Read a manifest previously written with :meth:`write`."""
        with Path(path).open() as handle:
            payload = json.load(handle)
        payload.pop("schema", None)
        return cls(**payload)


def build_manifest(
    results: Sequence[object],
    seed: Optional[int] = None,
    config: Optional[object] = None,
    tracer: Optional[object] = None,
    registry: Optional[object] = None,
    executor: Optional[Dict[str, object]] = None,
    scenario: Optional[object] = None,
) -> RunManifest:
    """Assemble a manifest from experiment results and the obs globals.

    ``results`` are :class:`~repro.pipeline.ExperimentResult` objects
    (duck-typed to avoid a circular import); ``tracer``/``registry``
    default to the process-global ones from :mod:`repro.obs`.
    """
    from repro import obs

    tracer = tracer if tracer is not None else obs.get_tracer()
    registry = registry if registry is not None else obs.get_registry()
    if config is not None and dataclasses.is_dataclass(config):
        config_dict = dataclasses.asdict(config)
    elif isinstance(config, dict):
        config_dict = dict(config)
    else:
        config_dict = {}
    scenario_info: Dict[str, object] = {}
    if scenario is not None:
        # Duck-typed Scenario: its fingerprint keys dataset-cache
        # entries, so recording it makes cache reuse auditable.
        scenario_info["fingerprint"] = str(
            getattr(scenario, "fingerprint", "")
        )
        spec = getattr(scenario, "spec", None)
        if spec is not None:
            scenario_info["name"] = spec.name
    experiments: Dict[str, Dict[str, object]] = {}
    for result in results:
        experiments[result.experiment_id] = {
            "title": result.title,
            "passed": result.passed,
            "n_checks": len(result.checks),
            "failed_checks": result.failed_checks(),
            "n_metrics": len(result.metrics),
        }
    return RunManifest(
        seed=seed,
        scenario=scenario_info,
        config=config_dict,
        git_sha=git_sha(),
        python=sys.version.split()[0],
        numpy=np.__version__,
        platform=platform.platform(),
        created_at=time.time(),
        experiments=experiments,
        trace=tracer.to_dict(),
        metrics=registry.snapshot(),
        executor=dict(executor) if executor else {},
    )


def _format_span(span: Dict[str, object], depth: int,
                 lines: List[str]) -> None:
    indent = "  " * depth
    name = f"{indent}{span['name']}"
    metrics = span.get("metrics") or {}
    suffix = ""
    if metrics:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(metrics.items()))
        suffix = f"  [{rendered}]"
    if span.get("error"):
        suffix += f"  !{span['error']}"
    lines.append(
        f"{name:44s} total {float(span['wall_ms']):10.1f} ms  "
        f"self {float(span['self_ms']):10.1f} ms{suffix}"
    )
    for child in span.get("children") or []:
        _format_span(child, depth + 1, lines)


def format_manifest(payload: Dict[str, object], top: int = 10) -> str:
    """Human-readable rendering of a ``telemetry.json`` payload."""
    lines: List[str] = ["run manifest"]
    for key in ("seed", "git_sha", "python", "numpy", "platform"):
        value = payload.get(key)
        if value is not None and value != "":
            lines.append(f"  {key:10s} {value}")
    scenario = payload.get("scenario") or {}
    if scenario:
        rendered = ", ".join(
            f"{k}={v}" for k, v in sorted(scenario.items())
        )
        lines.append(f"  scenario   {rendered}")
    config = payload.get("config") or {}
    if config:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(config.items()))
        lines.append(f"  config     {rendered}")
    executor = payload.get("executor") or {}
    if executor:
        flat = {k: v for k, v in executor.items() if not isinstance(v, dict)}
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(flat.items()))
        lines.append(f"  executor   {rendered}")
        for key, nested in sorted(executor.items()):
            if isinstance(nested, dict):
                rendered = ", ".join(
                    f"{k}={v}" for k, v in sorted(nested.items())
                )
                lines.append(f"    {key}: {rendered}")
    experiments = payload.get("experiments") or {}
    if experiments:
        n_passed = sum(1 for e in experiments.values() if e.get("passed"))
        lines.append(
            f"  experiments {n_passed}/{len(experiments)} passed"
        )
        for name, entry in experiments.items():
            if not entry.get("passed"):
                failed = ", ".join(entry.get("failed_checks") or [])
                lines.append(f"    FAIL {name}: {failed}")
    spans = (payload.get("trace") or {}).get("spans") or []
    if spans:
        lines.append("")
        lines.append("span tree (total / self wall time):")
        for span in spans:
            _format_span(span, 1, lines)
    counters = (payload.get("metrics") or {}).get("counters") or {}
    if counters:
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append("")
        lines.append(f"top counters ({min(top, len(ranked))}):")
        for name, value in ranked[:top]:
            lines.append(f"  {name:40s} {value:>14,}")
    timers = (payload.get("metrics") or {}).get("timers") or {}
    if timers:
        lines.append("")
        lines.append("timers:")
        for name, stats in sorted(timers.items()):
            if not stats.get("count"):
                continue
            lines.append(
                f"  {name:40s} n={stats['count']:<5d} "
                f"total={stats['total']:.3f}s p50={stats['p50']:.3f}s "
                f"max={stats['max']:.3f}s"
            )
    return "\n".join(lines)
