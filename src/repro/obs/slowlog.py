"""The slow-query log: one JSON line per over-budget query.

A :class:`SlowQueryLog` captures everything needed to understand why a
query blew its latency budget *without* re-running it: the canonical
spec and its fingerprint, the plan the engine chose (partitions
scanned vs. pruned, projected columns, sidecar usage, estimated
bytes), and the full stage breakdown (queue wait, planning, scanning,
merging, cache store, end-to-end total).  The
:class:`~repro.query.service.QueryService` writes one entry for every
query whose total latency reaches the threshold; ``repro serve
--slow-log PATH --slow-threshold S`` wires it up from the CLI.

Entries append as JSONL (one object per line, ``ts`` first), so the
file tails cleanly while the service runs and loads with one
``json.loads`` per line afterwards.  Writes are serialized under a
lock and use append mode, so worker threads — or multiple services
sharing one path — interleave whole lines, never partial ones.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

PathLike = Union[str, Path]

#: Stage keys every slow-query entry carries (queue wait, planning,
#: partition scans, partial merges, result-cache store, end-to-end).
STAGE_KEYS = ("queue", "plan", "scan", "merge", "cache_store", "total")


class SlowQueryLog:
    """Threshold-gated JSONL sink for per-query diagnostics."""

    def __init__(self, path: PathLike, threshold_s: float = 1.0):
        if threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        self.path = Path(path)
        self.threshold_s = float(threshold_s)
        self._lock = threading.Lock()
        self._entries_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    @property
    def entries_written(self) -> int:
        """Entries appended by this instance (not lines in the file)."""
        return self._entries_written

    def should_log(self, total_s: float) -> bool:
        """Whether a query with this end-to-end latency is over budget."""
        return total_s >= self.threshold_s

    def record(self, total_s: float, entry: Dict[str, object]) -> bool:
        """Append ``entry`` if ``total_s`` reaches the threshold.

        Returns True when a line was written.  ``entry`` is shallow-
        copied with a ``ts`` (unix seconds) and ``threshold_s`` header;
        callers provide the query fields (see the service for the
        schema).
        """
        if not self.should_log(total_s):
            return False
        payload: Dict[str, object] = {
            "ts": round(time.time(), 3),
            "threshold_s": self.threshold_s,
        }
        payload.update(entry)
        line = json.dumps(payload, sort_keys=True, default=str)
        with self._lock:
            with self.path.open("a") as handle:
                handle.write(line + "\n")
            self._entries_written += 1
        return True

    def describe(self) -> Dict[str, object]:
        """Configuration + lifetime count (manifest-ready)."""
        return {
            "path": str(self.path),
            "threshold_s": self.threshold_s,
            "entries_written": self._entries_written,
        }


def read_slow_log(path: PathLike) -> list:
    """Load every entry from a slow-query log file (tests, tooling)."""
    entries = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries
