"""Prometheus text exposition (format version 0.0.4) for the registry.

Every instrument in a :class:`~repro.obs.metrics.MetricsRegistry` maps
to one Prometheus metric family:

* counters become ``counter`` families with the conventional
  ``_total`` suffix (``query.served`` → ``repro_query_served_total``),
* gauges become ``gauge`` families (unset gauges are omitted),
* histograms become ``summary`` families with ``quantile`` labels
  (0.5 / 0.9 / 0.99) plus exact ``_sum`` and ``_count`` series,
* timers are histograms whose unit is seconds, so their family name
  carries the conventional ``_seconds`` suffix
  (``query.latency`` → ``repro_query_latency_seconds``).

Names are sanitized to the Prometheus grammar (dots and dashes become
underscores) and prefixed with ``repro_``; each family is declared by
exactly one ``# HELP`` / ``# TYPE`` pair, which the CI scrape step
validates.  :func:`render_snapshot` works from a registry *snapshot*
dict — the shape persisted in ``telemetry.json`` manifests — so
``lockdown-effect telemetry FILE --format prom`` can re-render a
recorded run, and :func:`render_registry` renders the live registry
for the ``/metrics`` endpoint.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry

#: Default family-name prefix for every exposed metric.
PREFIX = "repro"

#: Quantiles exposed on summary families (keyed by snapshot stat).
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = PREFIX) -> str:
    """Sanitize an instrument name into a Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: float) -> str:
    """One sample value in exposition syntax (ints stay integral)."""
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Renderer:
    """Accumulates families, guaranteeing unique declarations."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._families: set = set()

    def family(self, name: str, mtype: str, help_text: str) -> Optional[str]:
        # Two instrument names can sanitize to one family name
        # ("a.b" / "a-b"); suffix the latecomer rather than emit a
        # duplicate declaration, which scrapers reject.
        while name in self._families:
            name += f"_{mtype}"
            if name in self._families:
                return None
        self._families.add(name)
        self.lines.append(f"# HELP {name} {_escape_help(help_text)}")
        self.lines.append(f"# TYPE {name} {mtype}")
        return name

    def sample(self, name: str, value: float, labels: str = "") -> None:
        self.lines.append(f"{name}{labels} {_format_value(value)}")


def _render_summary(
    renderer: _Renderer,
    family: Optional[str],
    stats: Mapping[str, float],
) -> None:
    if family is None:
        return
    count = int(stats.get("count", 0))
    if count:
        for quantile, stat in SUMMARY_QUANTILES:
            if stat in stats:
                renderer.sample(
                    family, stats[stat], labels=f'{{quantile="{quantile}"}}'
                )
    renderer.sample(f"{family}_sum", float(stats.get("total", 0.0)))
    renderer.sample(f"{family}_count", count)


def render_snapshot(
    snapshot: Mapping[str, Mapping[str, object]], prefix: str = PREFIX
) -> str:
    """Exposition text from a registry snapshot dict.

    Accepts the exact shape :meth:`MetricsRegistry.snapshot` produces
    (and ``telemetry.json`` persists): ``counters`` mapping names to
    integers, ``gauges`` to floats (or ``None`` — skipped),
    ``histograms``/``timers`` to summary-statistics dicts.
    """
    renderer = _Renderer()
    counters: Dict[str, object] = dict(snapshot.get("counters") or {})
    for name in sorted(counters):
        family = renderer.family(
            f"{prometheus_name(name, prefix)}_total", "counter",
            f"Counter {name!r}.",
        )
        if family is not None:
            renderer.sample(family, float(counters[name]))  # type: ignore[arg-type]
    gauges: Dict[str, object] = dict(snapshot.get("gauges") or {})
    for name in sorted(gauges):
        value = gauges[name]
        if value is None:
            continue
        family = renderer.family(
            prometheus_name(name, prefix), "gauge", f"Gauge {name!r}.",
        )
        if family is not None:
            renderer.sample(family, float(value))  # type: ignore[arg-type]
    histograms: Dict[str, object] = dict(snapshot.get("histograms") or {})
    for name in sorted(histograms):
        family = renderer.family(
            prometheus_name(name, prefix), "summary",
            f"Distribution {name!r}.",
        )
        _render_summary(renderer, family, histograms[name])  # type: ignore[arg-type]
    timers: Dict[str, object] = dict(snapshot.get("timers") or {})
    for name in sorted(timers):
        family = renderer.family(
            f"{prometheus_name(name, prefix)}_seconds", "summary",
            f"Wall-clock timer {name!r} (seconds).",
        )
        _render_summary(renderer, family, timers[name])  # type: ignore[arg-type]
    return "\n".join(renderer.lines) + "\n" if renderer.lines else ""


def render_registry(
    registry: Optional[MetricsRegistry] = None, prefix: str = PREFIX
) -> str:
    """Exposition text for ``registry`` (default: the process-global)."""
    if registry is None:
        from repro import obs

        registry = obs.get_registry()
    return render_snapshot(registry.snapshot(), prefix=prefix)
