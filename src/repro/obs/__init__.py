"""Pipeline observability: metrics, tracing spans, logs, run manifests.

The package keeps one process-global :class:`~repro.obs.metrics.MetricsRegistry`
and one :class:`~repro.obs.trace.Tracer`.  Both default to no-op
implementations, so the instrumentation woven through the hot paths
(:mod:`repro.experiments`, :mod:`repro.synth.flowgen`,
:mod:`repro.flows.table`, :mod:`repro.core.streaming`) is effectively
free until someone opts in::

    from repro import obs

    obs.configure(telemetry=True, log_level="INFO")
    results = run_all()
    manifest = obs.build_manifest(results, seed=20200316)
    manifest.write("telemetry.json")

``lockdown-effect run --telemetry PATH`` does exactly this and the
``telemetry`` subcommand pretty-prints the result.

Instrumented code uses the module-level helpers, which always resolve
the *current* globals::

    with obs.span("flowgen/vod") as span:
        ...
        span.set_metric("flows", n)
    obs.counter("flowgen.flows").inc(n)

Guard work that only computes metric inputs with :func:`enabled` so the
disabled path stays zero-cost.
"""

from __future__ import annotations

from typing import IO, Optional, Union

from repro.obs.logs import (
    JsonFormatter,
    configure_logging,
    get_logger,
    log_event,
    reset_logging,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    format_manifest,
    git_sha,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
)
from repro.obs.prom import render_registry, render_snapshot
from repro.obs.server import MetricsServer
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "MetricsServer",
    "NullRegistry",
    "NullTracer",
    "RunManifest",
    "SlowQueryLog",
    "Span",
    "Timer",
    "Tracer",
    "build_manifest",
    "configure",
    "configure_logging",
    "counter",
    "enabled",
    "format_manifest",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "git_sha",
    "histogram",
    "log_event",
    "prometheus_text",
    "render_registry",
    "render_snapshot",
    "reset",
    "reset_logging",
    "set_registry",
    "set_tracer",
    "span",
    "timer",
]

_registry: MetricsRegistry = NullRegistry()
_tracer: Tracer = NullTracer()
_enabled: bool = False


def enabled() -> bool:
    """Whether telemetry (metrics + tracing) is currently collected."""
    return _enabled


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry (a no-op one by default)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> None:
    """Install ``registry`` as the process-global metrics registry."""
    global _registry, _enabled
    _registry = registry
    _enabled = registry.enabled or _tracer.enabled


def get_tracer() -> Tracer:
    """The process-global tracer (a no-op one by default)."""
    return _tracer


def set_tracer(tracer: Tracer) -> None:
    """Install ``tracer`` as the process-global tracer."""
    global _tracer, _enabled
    _tracer = tracer
    _enabled = _registry.enabled or tracer.enabled


def configure(
    telemetry: bool = True,
    log_level: Optional[Union[int, str]] = None,
    log_stream: Optional[IO[str]] = None,
    json_logs: bool = True,
) -> None:
    """Entry point: enable telemetry and/or structured logging.

    ``telemetry=True`` installs a fresh registry and tracer (dropping
    anything previously collected); ``log_level`` additionally routes
    ``repro.*`` log events to ``log_stream`` (default stderr) as JSON.
    """
    if telemetry:
        set_registry(MetricsRegistry())
        set_tracer(Tracer())
    if log_level is not None:
        configure_logging(log_level, stream=log_stream, json_output=json_logs)


def reset() -> None:
    """Back to the defaults: no-op telemetry, unconfigured logging."""
    set_registry(NullRegistry())
    set_tracer(NullTracer())
    reset_logging()


def span(name: str):
    """Open a span on the current tracer (no-op when disabled)."""
    return _tracer.span(name)


def counter(name: str) -> Counter:
    """Look up a counter on the current registry."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """Look up a gauge on the current registry."""
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Look up a histogram on the current registry."""
    return _registry.histogram(name)


def timer(name: str) -> Timer:
    """Look up a timer on the current registry."""
    return _registry.timer(name)


def prometheus_text() -> str:
    """The current registry in Prometheus text exposition format."""
    return render_registry(_registry)
