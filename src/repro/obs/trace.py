"""Nested tracing spans.

A span measures one named unit of work (``"experiment/fig09"``,
``"flowgen/vod"``) and nests: spans opened while another span is active
become its children, so a run produces a tree mirroring the pipeline's
call structure.  Each span records wall time, optional attached
metrics, and the error type if its body raised; the tree serializes
via :meth:`Tracer.to_dict` into the ``telemetry.json`` artifact.

As with metrics, a :class:`NullTracer` stands in when telemetry is
disabled: ``span()`` then returns one shared no-op context manager, so
instrumented code costs almost nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Union

MetricValue = Union[int, float, str]


class Span:
    """One timed unit of work inside a trace tree."""

    __slots__ = ("name", "started_at", "wall_s", "metrics", "children",
                 "error")

    def __init__(self, name: str):
        self.name = name
        self.started_at = time.time()
        self.wall_s = 0.0
        self.metrics: Dict[str, MetricValue] = {}
        self.children: List["Span"] = []
        self.error: str = ""

    def set_metric(self, key: str, value: MetricValue) -> None:
        """Attach one metric value to this span."""
        self.metrics[key] = value

    @property
    def self_s(self) -> float:
        """Wall time not covered by child spans."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation of the subtree."""
        payload: Dict[str, object] = {
            "name": self.name,
            "started_at": round(self.started_at, 3),
            "wall_ms": round(self.wall_s * 1e3, 3),
            "self_ms": round(self.self_s * 1e3, 3),
            "metrics": dict(self.metrics),
            "children": [c.to_dict() for c in self.children],
        }
        if self.error:
            payload["error"] = self.error
        return payload


class Tracer:
    """Collects spans into a tree; one tracer per pipeline run.

    Span stacks are per-thread (the parallel executor opens spans from
    worker threads), so nesting is tracked within each thread and spans
    opened on a fresh thread become roots.  The shared ``roots`` list
    is lock-protected.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a child of the currently active span (or a new root)."""
        current = Span(name)
        stack = self._stack
        if stack:
            stack[-1].children.append(current)
        else:
            with self._lock:
                self.roots.append(current)
        stack.append(current)
        t0 = time.perf_counter()
        try:
            yield current
        except BaseException as exc:
            current.error = type(exc).__name__
            raise
        finally:
            current.wall_s = time.perf_counter() - t0
            stack.pop()

    def to_dict(self) -> Dict[str, object]:
        """The whole trace tree, JSON-serializable."""
        return {"spans": [span.to_dict() for span in self.roots]}


class _NullSpan(Span):
    """Shared inert span handed out while tracing is disabled."""

    __slots__ = ()

    def set_metric(self, key: str, value: MetricValue) -> None:
        return None


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan("null")
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The disabled tracer: records nothing."""

    enabled = False

    def span(self, name: str) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN_CONTEXT

    def to_dict(self) -> Dict[str, object]:
        return {"spans": []}
