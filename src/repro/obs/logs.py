"""Structured event logging on top of the stdlib ``logging`` module.

All pipeline loggers hang off the ``repro`` root logger; by default
they propagate to whatever the host application configured.
:func:`configure_logging` installs a stream handler with a one-line
JSON formatter so unattended runs produce machine-parseable events::

    {"event": "experiment-failed", "experiment": "fig09",
     "failed_checks": ["..."], "level": "warning", ...}

Use :func:`log_event` to attach structured fields to an event; plain
``logger.info(...)`` calls work too and serialize with just the
message.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional, Union

#: Root of the package's logger hierarchy.
ROOT_LOGGER = "repro"


class JsonFormatter(logging.Formatter):
    """One JSON object per log record."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: Union[int, str] = "INFO",
    stream: Optional[IO[str]] = None,
    json_output: bool = True,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger; idempotent.

    Replaces any handlers previously installed on the root ``repro``
    logger and stops propagation so events are not printed twice.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if isinstance(level, str):
        level = level.upper()
    logger.setLevel(level)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    if json_output:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def reset_logging() -> None:
    """Remove the handlers installed by :func:`configure_logging`."""
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("cli")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Emit ``event`` with structured ``fields`` attached."""
    logger.log(level, event, extra={"fields": fields})
