"""Hourly traffic time series.

The common currency between the synthetic generators and the analysis
pipeline: a vector of per-hour values anchored at an hourly index
(hours since 2020-01-01 00:00, see :mod:`repro.timebase`).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Callable, Iterator, List, Tuple

import numpy as np

from repro import timebase


@dataclass(frozen=True)
class HourlySeries:
    """Per-hour values over a contiguous range of hourly bins."""

    start_hour: int
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("series values must be one-dimensional")
        if self.start_hour < 0:
            raise ValueError("start_hour must be non-negative")
        object.__setattr__(self, "values", values)

    # -- bounds --------------------------------------------------------------

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def stop_hour(self) -> int:
        """One past the last hourly bin."""
        return self.start_hour + len(self)

    @property
    def start_date(self) -> _dt.date:
        """Calendar date of the first bin."""
        return timebase.hour_index_to_datetime(self.start_hour).date()

    def covers(self, start: int, stop: int) -> bool:
        """Whether the half-open hour range is inside the series."""
        return self.start_hour <= start and stop <= self.stop_hour

    # -- slicing ---------------------------------------------------------------

    def slice_hours(self, start: int, stop: int) -> "HourlySeries":
        """Sub-series over the half-open hourly range ``[start, stop)``."""
        if not self.covers(start, stop):
            raise ValueError(
                f"range [{start}, {stop}) outside series "
                f"[{self.start_hour}, {self.stop_hour})"
            )
        offset = start - self.start_hour
        return HourlySeries(start, self.values[offset : offset + (stop - start)])

    def slice_week(self, week: timebase.Week) -> "HourlySeries":
        """Sub-series covering a seven-day analysis week."""
        start, stop = week.hour_range()
        return self.slice_hours(start, stop)

    def slice_day(self, day: _dt.date) -> "HourlySeries":
        """Sub-series covering one calendar day (24 bins)."""
        start = timebase.hour_index(day, 0)
        return self.slice_hours(start, start + 24)

    def day_values(self, day: _dt.date) -> np.ndarray:
        """The 24 hourly values of ``day``."""
        return self.slice_day(day).values

    # -- aggregation -------------------------------------------------------------

    def total(self) -> float:
        """Sum over all bins."""
        return float(self.values.sum())

    def daily_totals(self) -> Tuple[_dt.date, np.ndarray]:
        """Per-day sums; returns (first full day, totals).

        Requires the series to start at hour 0 of a day and to span
        whole days.
        """
        if self.start_hour % 24 != 0 or len(self) % 24 != 0:
            raise ValueError("series must be aligned to whole days")
        totals = self.values.reshape(-1, 24).sum(axis=1)
        return self.start_date, totals

    def rebin(self, hours_per_bin: int) -> np.ndarray:
        """Sum into coarser bins of ``hours_per_bin`` (must divide evenly)."""
        if hours_per_bin <= 0 or len(self) % hours_per_bin != 0:
            raise ValueError(
                f"cannot rebin {len(self)} hours into bins of {hours_per_bin}"
            )
        return self.values.reshape(-1, hours_per_bin).sum(axis=1)

    def iter_days(self) -> Iterator[Tuple[_dt.date, np.ndarray]]:
        """Iterate (date, 24 hourly values) over whole days."""
        if self.start_hour % 24 != 0 or len(self) % 24 != 0:
            raise ValueError("series must be aligned to whole days")
        day = self.start_date
        for i in range(len(self) // 24):
            yield day, self.values[i * 24 : (i + 1) * 24]
            day += _dt.timedelta(days=1)

    # -- arithmetic ---------------------------------------------------------------

    def normalize_by(self, denominator: float) -> "HourlySeries":
        """Series divided by a positive scalar."""
        if denominator <= 0:
            raise ValueError("normalization denominator must be positive")
        return HourlySeries(self.start_hour, self.values / denominator)

    def normalize_by_min(self) -> "HourlySeries":
        """Series normalized by its own minimum (Fig 3 convention).

        Raises when the minimum is not positive — the paper's vantage
        points never see a zero-traffic hour.
        """
        minimum = float(self.values.min())
        return self.normalize_by(minimum)

    def normalize_by_max(self) -> "HourlySeries":
        """Series normalized by its own maximum (Fig 2 convention)."""
        return self.normalize_by(float(self.values.max()))

    def __add__(self, other: "HourlySeries") -> "HourlySeries":
        if not isinstance(other, HourlySeries):
            return NotImplemented
        if other.start_hour != self.start_hour or len(other) != len(self):
            raise ValueError("series are not aligned")
        return HourlySeries(self.start_hour, self.values + other.values)

    def scale(self, factor: float) -> "HourlySeries":
        """Series multiplied by a scalar."""
        return HourlySeries(self.start_hour, self.values * factor)

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "HourlySeries":
        """Apply an elementwise transform to the values."""
        mapped = np.asarray(fn(self.values), dtype=np.float64)
        if mapped.shape != self.values.shape:
            raise ValueError("transform must preserve series length")
        return HourlySeries(self.start_hour, mapped)


def sum_series(series: List[HourlySeries]) -> HourlySeries:
    """Sum aligned series; raises on empty input."""
    if not series:
        raise ValueError("cannot sum zero series")
    result = series[0]
    for other in series[1:]:
        result = result + other
    return result


def full_study_series(values: np.ndarray) -> HourlySeries:
    """Wrap values spanning the whole study period (hour 0 onward)."""
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != timebase.STUDY_HOURS:
        raise ValueError(
            f"expected {timebase.STUDY_HOURS} hourly values, "
            f"got {values.shape[0]}"
        )
    return HourlySeries(0, values)
