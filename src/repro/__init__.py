"""Reproduction of "The Lockdown Effect" (IMC 2020).

Public API:

* :func:`repro.synth.build_scenario` — construct the synthetic world,
* :mod:`repro.core` — the paper's analyses (one module per figure
  family),
* :mod:`repro.experiments` — end-to-end experiment registry and
  runners regenerating every table and figure (``repro.pipeline``
  remains as a compatibility shim over the same surface),
* :mod:`repro.flows` / :mod:`repro.netbase` / :mod:`repro.dns` — the
  substrates (flow tables, network metadata, domain corpus).
"""

__version__ = "1.0.0"

from repro.synth import Scenario, build_scenario

__all__ = ["Scenario", "build_scenario", "__version__"]
