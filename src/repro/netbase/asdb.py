"""AS registry: organizations, categories, and the hypergiant list.

The paper leverages the hypergiant classification of Böttger et al.
(Table 2, reproduced verbatim in :data:`HYPERGIANTS`), manually curated
eyeball-AS lists (§3.4), and per-application AS filters (Table 1).
This module provides the registry those analyses query, plus synthetic
populations of enterprise / hosting / eyeball ASes standing in for the
long tail of the real routing table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.timebase import Region


class ASCategory(enum.Enum):
    """Coarse functional category of an AS."""

    HYPERGIANT = "hypergiant"
    EYEBALL = "eyeball"
    MOBILE = "mobile"
    ENTERPRISE = "enterprise"
    CLOUD = "cloud"
    CDN = "cdn"
    HOSTING = "hosting"
    EDUCATIONAL = "educational"
    GAMING = "gaming"
    VOD = "vod"
    SOCIAL = "social"
    WEBCONF = "webconf"
    COLLAB = "collab"
    TV_STREAMING = "tv-streaming"
    TRANSIT = "transit"
    IXP_SERVICES = "ixp-services"


@dataclass(frozen=True)
class ASInfo:
    """One autonomous system in the registry."""

    asn: int
    name: str
    category: ASCategory
    region: Region = Region.CENTRAL_EUROPE
    #: Relative traffic weight within its category; the synthetic
    #: generators use this to skew volume toward large players.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


#: The 15 hypergiant organizations of the paper's Table 2 (Appendix A),
#: from the classification of Böttger et al.
HYPERGIANTS: Sequence[ASInfo] = (
    ASInfo(714, "Apple Inc", ASCategory.HYPERGIANT, weight=4.0),
    ASInfo(16509, "Amazon.com", ASCategory.HYPERGIANT, weight=6.0),
    ASInfo(32934, "Facebook", ASCategory.HYPERGIANT, weight=8.0),
    ASInfo(15169, "Google Inc.", ASCategory.HYPERGIANT, weight=10.0),
    ASInfo(20940, "Akamai Technologies", ASCategory.HYPERGIANT, weight=7.0),
    ASInfo(10310, "Yahoo!", ASCategory.HYPERGIANT, weight=1.0),
    ASInfo(2906, "Netflix", ASCategory.HYPERGIANT, weight=9.0),
    ASInfo(6939, "Hurricane Electric", ASCategory.HYPERGIANT, weight=2.0),
    ASInfo(16276, "OVH", ASCategory.HYPERGIANT, weight=2.0),
    ASInfo(22822, "Limelight Networks Global", ASCategory.HYPERGIANT, weight=2.5),
    ASInfo(8075, "Microsoft", ASCategory.HYPERGIANT, weight=5.0),
    ASInfo(13414, "Twitter, Inc.", ASCategory.HYPERGIANT, weight=1.5),
    ASInfo(46489, "Twitch", ASCategory.HYPERGIANT, weight=2.0),
    ASInfo(13335, "Cloudflare", ASCategory.HYPERGIANT, weight=3.0),
    ASInfo(15133, "Verizon Digital Media Services", ASCategory.HYPERGIANT, weight=2.0),
)

#: ASNs of the Table 2 hypergiants, in table order.
HYPERGIANT_ASNS: FrozenSet[int] = frozenset(a.asn for a in HYPERGIANTS)

# Well-known non-hypergiant organizations referenced by the paper's
# application filters (§4, §5, Appendix B).
_NAMED_ASES: Sequence[ASInfo] = (
    # Web conferencing (Table 1: one distinct ASN — Microsoft, already a
    # hypergiant — so a dedicated conferencing AS is Zoom).
    ASInfo(30103, "Zoom Video Communications", ASCategory.WEBCONF, weight=3.0),
    # Video on demand beyond Netflix.
    ASInfo(40027, "Hulu/Disney Streaming", ASCategory.VOD, Region.US_EAST, 3.0),
    ASInfo(35402, "EU VoD Platform", ASCategory.VOD, Region.CENTRAL_EUROPE, 2.0),
    ASInfo(29990, "SE VoD Platform", ASCategory.VOD, Region.SOUTHERN_EUROPE, 1.5),
    # Gaming providers (Table 1: five ASes).
    ASInfo(32590, "Valve Corporation", ASCategory.GAMING, weight=4.0),
    ASInfo(6507, "Riot Games", ASCategory.GAMING, weight=3.0),
    ASInfo(57976, "Blizzard Entertainment", ASCategory.GAMING, weight=2.5),
    ASInfo(46555, "Epic Games", ASCategory.GAMING, weight=3.0),
    ASInfo(2639, "Nintendo/Online Gaming", ASCategory.GAMING, weight=1.5),
    # Social media (Table 1: four ASes; Facebook/Twitter are
    # hypergiants, so two more here).
    ASInfo(13767, "Pinterest-like Social", ASCategory.SOCIAL, weight=1.0),
    ASInfo(54113, "Snap-like Social", ASCategory.SOCIAL, weight=1.5),
    # Collaborative working (Table 1: two ASes).
    ASInfo(14061, "Collab Cloud Docs", ASCategory.COLLAB, weight=2.0),
    ASInfo(19679, "Dropbox-like Sync", ASCategory.COLLAB, weight=2.0),
    # CDNs beyond the hypergiant ones (Table 1: eight ASes).
    ASInfo(54994, "CDN QuantumDelivery", ASCategory.CDN, weight=2.0),
    ASInfo(60068, "CDN Datacamp", ASCategory.CDN, weight=1.5),
    ASInfo(32787, "CDN Prolexic", ASCategory.CDN, weight=1.0),
    ASInfo(12989, "CDN HighWinds", ASCategory.CDN, weight=1.0),
    ASInfo(3356, "CDN-Lumen Edge", ASCategory.CDN, weight=2.0),
    ASInfo(202623, "CDN EU Regional", ASCategory.CDN, Region.CENTRAL_EUROPE, 1.0),
    ASInfo(49544, "CDN i3D", ASCategory.CDN, weight=1.0),
    ASInfo(136787, "CDN APAC Gateway", ASCategory.CDN, weight=0.5),
    # TV streaming over TCP/8200 (Fig 7b: Russian TV channel streaming).
    ASInfo(199995, "International TV Streaming", ASCategory.TV_STREAMING, weight=1.5),
    # Educational / research networks (Table 1: nine ASes).
    ASInfo(680, "DFN German Research Network", ASCategory.EDUCATIONAL, Region.CENTRAL_EUROPE, 3.0),
    ASInfo(766, "RedIRIS Spain", ASCategory.EDUCATIONAL, Region.SOUTHERN_EUROPE, 2.5),
    ASInfo(1103, "SURFnet", ASCategory.EDUCATIONAL, Region.CENTRAL_EUROPE, 2.0),
    ASInfo(2200, "Renater France", ASCategory.EDUCATIONAL, Region.CENTRAL_EUROPE, 2.0),
    ASInfo(137, "GARR Italy", ASCategory.EDUCATIONAL, Region.SOUTHERN_EUROPE, 2.0),
    ASInfo(11537, "Internet2", ASCategory.EDUCATIONAL, Region.US_EAST, 3.0),
    ASInfo(668, "US DoD Education", ASCategory.EDUCATIONAL, Region.US_EAST, 1.0),
    ASInfo(559, "SWITCH", ASCategory.EDUCATIONAL, Region.CENTRAL_EUROPE, 1.5),
    ASInfo(786, "JANET UK", ASCategory.EDUCATIONAL, Region.CENTRAL_EUROPE, 2.0),
    # Music streaming (Appendix B: Spotify, AS 8403).
    ASInfo(8403, "Spotify", ASCategory.VOD, Region.CENTRAL_EUROPE, 2.0),
)

#: The EDU metropolitan network itself (16 institutions behind one AS,
#: modeled on REDIMadrid).
EDU_NETWORK_ASN = 25119

#: The ISP-CE's own AS (residential broadband, >15M lines).
ISP_CE_ASN = 3320

#: The mobile operator's AS (>40M customers).
MOBILE_CE_ASN = 64521


@dataclass
class ASRegistry:
    """Queryable collection of :class:`ASInfo` entries."""

    entries: Dict[int, ASInfo] = field(default_factory=dict)

    def add(self, info: ASInfo) -> None:
        """Register ``info``; rejects duplicate ASNs."""
        if info.asn in self.entries:
            raise ValueError(f"duplicate ASN {info.asn}")
        self.entries[info.asn] = info

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, asn: int) -> bool:
        return asn in self.entries

    def get(self, asn: int) -> Optional[ASInfo]:
        """The entry for ``asn``, or None if unregistered."""
        return self.entries.get(asn)

    def name(self, asn: int) -> str:
        """Organization name, or ``AS<asn>`` for unregistered ASes."""
        info = self.entries.get(asn)
        return info.name if info else f"AS{asn}"

    def category(self, asn: int) -> Optional[ASCategory]:
        """Category of ``asn``, or None if unregistered."""
        info = self.entries.get(asn)
        return info.category if info else None

    def is_hypergiant(self, asn: int) -> bool:
        """Whether ``asn`` is one of the Table 2 hypergiants."""
        return asn in HYPERGIANT_ASNS

    def by_category(self, category: ASCategory) -> List[ASInfo]:
        """All entries of ``category``, ordered by descending weight."""
        found = [a for a in self.entries.values() if a.category is category]
        return sorted(found, key=lambda a: (-a.weight, a.asn))

    def asns_by_category(self, category: ASCategory) -> List[int]:
        """ASNs of :meth:`by_category`, same order."""
        return [a.asn for a in self.by_category(category)]

    def all_asns(self) -> List[int]:
        """All registered ASNs, ascending."""
        return sorted(self.entries)

    def eyeball_asns(self, region: Optional[Region] = None) -> List[int]:
        """ASNs of eyeball (residential broadband) networks.

        These are the "manually selected eyeball networks" of §3.4; the
        synthetic registry makes the selection explicit.
        """
        found = [
            a
            for a in self.entries.values()
            if a.category in (ASCategory.EYEBALL, ASCategory.MOBILE)
            and (region is None or a.region is region)
        ]
        return sorted(a.asn for a in found)


def _synthetic_population(
    base_asn: int,
    count: int,
    prefix: str,
    category: ASCategory,
    regions: Sequence[Region],
    weights: Sequence[float],
) -> List[ASInfo]:
    """Deterministic synthetic AS population for the long tail."""
    population = []
    for i in range(count):
        population.append(
            ASInfo(
                asn=base_asn + i,
                name=f"{prefix}-{i:03d}",
                category=category,
                region=regions[i % len(regions)],
                weight=weights[i % len(weights)],
            )
        )
    return population


def build_default_registry(
    n_enterprise: int = 240,
    n_hosting: int = 60,
    n_eyeball_per_region: int = 8,
    n_cloud: int = 12,
) -> ASRegistry:
    """Build the registry used by the synthetic vantage points.

    Contains the Table 2 hypergiants, the named application/CDN/
    educational ASes, the vantage-point ASes, and deterministic
    synthetic populations for enterprises, hosters, eyeballs, and
    clouds.  Sizes default to values that give the Fig 6 scatter and
    the Fig 5 ECDF realistic population sizes while keeping generation
    fast.
    """
    registry = ASRegistry()
    for info in HYPERGIANTS:
        registry.add(info)
    for info in _NAMED_ASES:
        registry.add(info)
    registry.add(
        ASInfo(ISP_CE_ASN, "ISP-CE Broadband", ASCategory.EYEBALL,
               Region.CENTRAL_EUROPE, 10.0)
    )
    registry.add(
        ASInfo(MOBILE_CE_ASN, "Mobile-CE Operator", ASCategory.MOBILE,
               Region.CENTRAL_EUROPE, 6.0)
    )
    registry.add(
        ASInfo(EDU_NETWORK_ASN, "EDU Metropolitan Network",
               ASCategory.EDUCATIONAL, Region.SOUTHERN_EUROPE, 2.0)
    )
    regions = (Region.CENTRAL_EUROPE, Region.SOUTHERN_EUROPE, Region.US_EAST)
    # Enterprises: mostly small, a few large (weight cycle is skewed).
    for info in _synthetic_population(
        base_asn=210000,
        count=n_enterprise,
        prefix="Enterprise",
        category=ASCategory.ENTERPRISE,
        regions=regions,
        weights=(0.2, 0.5, 1.0, 0.3, 2.0, 0.4, 0.8, 0.25),
    ):
        registry.add(info)
    for info in _synthetic_population(
        base_asn=220000,
        count=n_hosting,
        prefix="Hosting",
        category=ASCategory.HOSTING,
        regions=regions,
        weights=(1.0, 0.5, 2.0, 0.75),
    ):
        registry.add(info)
    for region_idx, region in enumerate(regions):
        for info in _synthetic_population(
            base_asn=230000 + 100 * region_idx,
            count=n_eyeball_per_region,
            prefix=f"Eyeball-{region.value}",
            category=ASCategory.EYEBALL,
            regions=(region,),
            weights=(4.0, 2.0, 1.0, 0.5),
        ):
            registry.add(info)
    for info in _synthetic_population(
        base_asn=240000,
        count=n_cloud,
        prefix="Cloud",
        category=ASCategory.CLOUD,
        regions=regions,
        weights=(3.0, 1.5, 1.0),
    ):
        registry.add(info)
    return registry
