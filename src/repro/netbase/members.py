"""IXP member database (PeeringDB-like).

Models the public-peering platform membership of an IXP: which ASes
connect, the physical capacity of each member's port, and capacity
upgrades over time.  §3.1 reports upgrades of roughly 1,500 Gbps across
many members at IXP-CE during the lockdown (1,300 Gbps at IXP-SE and
IXP-US combined); Fig 5 measures utilization *relative to physical
capacity*, so the capacity timeline matters.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


#: Port capacity classes sold by the modeled IXPs, in Gbps.
CAPACITY_CLASSES: Tuple[int, ...] = (1, 10, 100, 400)


@dataclass(frozen=True)
class CapacityUpgrade:
    """A member port upgrade effective on a given date."""

    effective: _dt.date
    added_gbps: int

    def __post_init__(self) -> None:
        if self.added_gbps <= 0:
            raise ValueError("upgrades must add positive capacity")


@dataclass
class IXPMember:
    """One member of an IXP's public peering platform."""

    asn: int
    base_capacity_gbps: int
    upgrades: List[CapacityUpgrade] = field(default_factory=list)

    def capacity_on(self, day: _dt.date) -> int:
        """Physical port capacity in Gbps effective on ``day``."""
        capacity = self.base_capacity_gbps
        for upgrade in self.upgrades:
            if day >= upgrade.effective:
                capacity += upgrade.added_gbps
        return capacity

    def add_upgrade(self, upgrade: CapacityUpgrade) -> None:
        """Record an upgrade, keeping the list date-ordered."""
        self.upgrades.append(upgrade)
        self.upgrades.sort(key=lambda u: u.effective)


class IXPMemberDB:
    """Member roster of one IXP."""

    def __init__(self, ixp_name: str, members: Sequence[IXPMember]):
        self.ixp_name = ixp_name
        self._members: Dict[int, IXPMember] = {}
        for member in members:
            if member.asn in self._members:
                raise ValueError(f"duplicate member ASN {member.asn}")
            self._members[member.asn] = member

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, asn: int) -> bool:
        return asn in self._members

    def member(self, asn: int) -> IXPMember:
        """The member with ``asn``; raises KeyError if not connected."""
        return self._members[asn]

    def get(self, asn: int) -> Optional[IXPMember]:
        """The member with ``asn``, or None."""
        return self._members.get(asn)

    @property
    def asns(self) -> List[int]:
        """Member ASNs, ascending."""
        return sorted(self._members)

    def members(self) -> List[IXPMember]:
        """All members, ascending by ASN."""
        return [self._members[asn] for asn in self.asns]

    def total_capacity_on(self, day: _dt.date) -> int:
        """Summed member port capacity on ``day``, in Gbps."""
        return sum(m.capacity_on(day) for m in self.members())

    def capacity_added_between(
        self, start: _dt.date, end: _dt.date
    ) -> int:
        """Gbps of upgrades with effective dates in ``(start, end]``."""
        added = 0
        for member in self.members():
            for upgrade in member.upgrades:
                if start < upgrade.effective <= end:
                    added += upgrade.added_gbps
        return added


def build_member_db(
    ixp_name: str,
    member_asns: Sequence[int],
    seed: int,
    lockdown_upgrade_gbps: int = 0,
    upgrade_window: Optional[Tuple[_dt.date, _dt.date]] = None,
) -> IXPMemberDB:
    """Build a member roster with realistic capacity distribution.

    Capacities follow the heavy-tailed mix observed at real IXPs: most
    members on 1 or 10 Gbps ports, a minority on 100 Gbps, a handful on
    400 Gbps.  ``lockdown_upgrade_gbps`` of upgrades (if any) are spread
    over randomly chosen members at random dates inside
    ``upgrade_window``, reproducing the §3.1 capacity-increase
    observation.
    """
    rng = np.random.default_rng(seed)
    members: List[IXPMember] = []
    capacity_probs = (0.35, 0.45, 0.17, 0.03)
    for asn in member_asns:
        capacity = int(rng.choice(CAPACITY_CLASSES, p=capacity_probs))
        members.append(IXPMember(asn=asn, base_capacity_gbps=capacity))
    if lockdown_upgrade_gbps > 0:
        if upgrade_window is None:
            raise ValueError(
                "upgrade_window is required when upgrades are requested"
            )
        spread_upgrades(members, lockdown_upgrade_gbps, upgrade_window, rng)
    return IXPMemberDB(ixp_name, members)


def spread_upgrades(
    members: Sequence[IXPMember],
    total_gbps: int,
    window: Tuple[_dt.date, _dt.date],
    rng: np.random.Generator,
) -> None:
    """Spread ``total_gbps`` of port upgrades over ``members``.

    Randomly chosen members receive 10 or 100 Gbps steps at random
    dates inside ``window`` (inclusive) until the total is reached.
    Used both for the default lockdown upgrade campaign and for
    scenario :class:`~repro.synth.events.CapacityBoost` events.
    """
    if total_gbps <= 0:
        raise ValueError("upgrade campaigns must add positive capacity")
    if not members:
        raise ValueError("cannot upgrade an empty member roster")
    start, end = window
    window_days = (end - start).days
    if window_days < 0:
        raise ValueError("upgrade window end precedes start")
    remaining = total_gbps
    while remaining > 0:
        member = members[int(rng.integers(0, len(members)))]
        step = int(min(remaining, rng.choice((10, 100))))
        offset = int(rng.integers(0, window_days + 1))
        member.add_upgrade(
            CapacityUpgrade(
                effective=start + _dt.timedelta(days=offset),
                added_gbps=step,
            )
        )
        remaining -= step
