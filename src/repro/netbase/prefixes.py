"""Deterministic IPv4 prefix allocation and address-to-AS lookup.

The synthetic traces must be self-consistent: a flow's ``src_asn`` must
be the AS that "announces" the prefix containing ``src_ip``, because
several analyses cross-check addresses against prefix ownership (§4
verifies that UDP/2408 traffic originates from Cloudflare prefixes and
UDP/3480 from Microsoft ones; §6 resolves VPN domains to addresses and
attributes traffic to them).

Allocation model: each AS receives one or more /16 blocks, proportional
to its registry weight, assigned deterministically in ascending-ASN
order from an allocation cursor.  A flat 65 536-entry table then gives
O(1) address-to-AS lookup.
"""

from __future__ import annotations

import ipaddress
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.netbase.asdb import ASRegistry

#: First /16 block handed out (16.0.0.0/16), leaving low space unused.
_FIRST_BLOCK = 16 * 256
#: One past the last allocatable /16 block (223.255.0.0/16), keeping
#: multicast and reserved space out of the pool.
_LAST_BLOCK = 224 * 256


@dataclass(frozen=True)
class Prefix:
    """An allocated /16 prefix."""

    high16: int  # upper 16 bits of the network address

    @property
    def network(self) -> ipaddress.IPv4Network:
        """The prefix as an :class:`ipaddress.IPv4Network`."""
        return ipaddress.IPv4Network((self.high16 << 16, 16))

    def __str__(self) -> str:
        return str(self.network)

    def contains(self, address: int) -> bool:
        """Whether a 32-bit address falls inside this prefix."""
        return (address >> 16) == self.high16


class PrefixMap:
    """O(1) address-to-AS lookup over /16 allocations."""

    def __init__(self, table: np.ndarray, owners: Dict[int, List[Prefix]]):
        if table.shape != (65536,):
            raise ValueError("lookup table must have 65536 entries")
        self._table = table
        self._owners = owners

    def asn_for(self, address: int) -> int:
        """Origin AS of ``address``; -1 if the space is unallocated."""
        if not 0 <= address <= 0xFFFFFFFF:
            raise ValueError(f"address out of range: {address}")
        return int(self._table[address >> 16])

    def asn_for_many(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`asn_for` over an address array."""
        return self._table[np.asarray(addresses, dtype=np.uint32) >> 16]

    def prefixes_of(self, asn: int) -> List[Prefix]:
        """Prefixes allocated to ``asn`` (empty if none)."""
        return list(self._owners.get(asn, ()))

    def owns(self, asn: int, address: int) -> bool:
        """Whether ``address`` lies inside a prefix of ``asn``."""
        return self.asn_for(address) == asn

    @property
    def allocated_asns(self) -> List[int]:
        """ASNs holding at least one prefix, ascending."""
        return sorted(self._owners)


class PrefixAllocator:
    """Deterministically allocates /16 blocks to every registered AS."""

    def __init__(self, registry: ASRegistry, blocks_per_weight: float = 1.0):
        self._registry = registry
        if blocks_per_weight <= 0:
            raise ValueError("blocks_per_weight must be positive")
        self._blocks_per_weight = blocks_per_weight

    def allocate(self) -> PrefixMap:
        """Perform the allocation and return the lookup map.

        Every AS receives ``ceil(weight * blocks_per_weight)`` /16
        blocks, at least one, in ascending ASN order.  Raises if the
        pool is exhausted, which indicates the registry is too large for
        the configured density.
        """
        table = np.full(65536, -1, dtype=np.int64)
        owners: Dict[int, List[Prefix]] = {}
        cursor = _FIRST_BLOCK
        for asn in self._registry.all_asns():
            info = self._registry.get(asn)
            assert info is not None
            n_blocks = max(1, math.ceil(info.weight * self._blocks_per_weight))
            prefixes = []
            for _ in range(n_blocks):
                if cursor >= _LAST_BLOCK:
                    raise RuntimeError(
                        "IPv4 /16 pool exhausted; reduce registry size or "
                        "blocks_per_weight"
                    )
                table[cursor] = asn
                prefixes.append(Prefix(cursor))
                cursor += 1
            owners[asn] = prefixes
        return PrefixMap(table, owners)


def deterministic_addresses_in(
    prefixes: Sequence[Prefix], count: int, salt: int
) -> np.ndarray:
    """``count`` reproducible addresses inside the union of ``prefixes``.

    Used for *server* addresses that must be stable across generator
    runs (web front-ends, VPN gateways the DNS corpus points at).  The
    sequence depends only on the prefixes and ``salt``.
    """
    if not prefixes:
        raise ValueError("at least one prefix is required")
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(
        int(salt) * 1_000_003 + prefixes[0].high16
    )
    return random_addresses_in(prefixes, count, rng)


def random_addresses_in(
    prefixes: Sequence[Prefix], count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` addresses uniformly from the union of ``prefixes``.

    Used by the flow generator to stamp flows with addresses consistent
    with their AS.  Host bits 0 and 0xFFFF are avoided so the result is
    never a network or broadcast address of the /16.
    """
    if not prefixes:
        raise ValueError("at least one prefix is required")
    highs = np.array([p.high16 for p in prefixes], dtype=np.uint32)
    chosen = rng.integers(0, len(highs), size=count)
    hosts = rng.integers(1, 0xFFFF, size=count, dtype=np.uint32)
    return (highs[chosen].astype(np.uint32) << np.uint32(16)) | hosts
