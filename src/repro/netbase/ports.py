"""IANA-like transport port and service registry.

Covers every port the paper analyzes: the §4 top-port discussion
(QUIC, NAT-traversal/IPsec/OpenVPN, alternative HTTP, TV streaming,
Cloudflare load balancing, video conferencing, email, and the unknown
TCP/25461), the §6 VPN ports, the Appendix B educational-network
classes, and the 57 gaming ports behind Table 1's gaming filters.

A port may legitimately be claimed by several applications (the paper
acknowledges this); the registry stores the *primary* service per
(protocol, port) pair and exposes category sets for the classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.flows.record import PROTO_TCP, PROTO_UDP, proto_name


@dataclass(frozen=True)
class PortService:
    """One registered transport service."""

    proto: int
    port: int
    service: str
    category: str
    description: str = ""

    @property
    def key(self) -> str:
        """``PROTO/port`` label, e.g. ``"UDP/443"``."""
        return f"{proto_name(self.proto)}/{self.port}"


def _tcp(port: int, service: str, category: str, desc: str = "") -> PortService:
    return PortService(PROTO_TCP, port, service, category, desc)


def _udp(port: int, service: str, category: str, desc: str = "") -> PortService:
    return PortService(PROTO_UDP, port, service, category, desc)


#: Steam game traffic and related Valve services.
GAMING_PORTS_STEAM: Tuple[int, ...] = tuple(range(27015, 27031)) + (27036, 27037, 4380)
#: Xbox Live.
GAMING_PORTS_XBOX: Tuple[int, ...] = (3074,)
#: PlayStation Network remote play / party.
GAMING_PORTS_PSN: Tuple[int, ...] = tuple(range(9295, 9305))
#: Riot Games (League of Legends) game and chat traffic.
GAMING_PORTS_RIOT: Tuple[int, ...] = tuple(range(5000, 5010)) + tuple(range(8393, 8401))
#: Blizzard (Battle.net) services.
GAMING_PORTS_BLIZZARD: Tuple[int, ...] = (1119, 3724, 6113)
#: Epic Games (Fortnite) services.
GAMING_PORTS_EPIC: Tuple[int, ...] = (9000, 9001, 9002, 9003)
#: Nintendo online services.
GAMING_PORTS_NINTENDO: Tuple[int, ...] = (45000, 45001)

#: All 57 gaming ports used by the Table 1 gaming filters.
GAMING_PORTS: Tuple[int, ...] = (
    GAMING_PORTS_STEAM
    + GAMING_PORTS_XBOX
    + GAMING_PORTS_PSN
    + GAMING_PORTS_RIOT
    + GAMING_PORTS_BLIZZARD
    + GAMING_PORTS_EPIC
    + GAMING_PORTS_NINTENDO
)

#: Email service ports (ten distinct, Table 1).
EMAIL_PORTS: Tuple[int, ...] = (25, 106, 110, 143, 465, 587, 993, 995, 2525, 4190)

#: Messaging service ports (five distinct, Table 1).
MESSAGING_PORTS: Tuple[int, ...] = (1863, 4244, 5222, 5223, 5242)

#: Web conferencing ports (six distinct, Table 1).
WEBCONF_PORTS: Tuple[int, ...] = (3478, 3479, 3480, 5061, 8801, 8802)

#: Collaborative working ports (nine distinct, Table 1).
COLLAB_PORTS: Tuple[int, ...] = (1352, 3220, 3221, 5005, 6000, 8443, 9443, 17500, 18080)

#: Well-known VPN ports (§6 port-based classification).
VPN_PORTS: Tuple[int, ...] = (500, 1194, 1701, 1723, 4500)


def default_port_registry() -> "PortRegistry":
    """The registry used by the generators and analyses."""
    services: List[PortService] = [
        # Web.
        _tcp(80, "http", "web", "plain HTTP"),
        _tcp(443, "https", "web", "HTTP over TLS"),
        _udp(443, "quic", "quic", "QUIC (streaming by Google, Akamai, ...)"),
        _tcp(8000, "http-alt-8000", "web", "alternative HTTP"),
        _tcp(8080, "http-alt", "web", "alternative HTTP / proxies"),
        # VPN / tunneling (both transports where applicable).
        _udp(500, "isakmp", "vpn", "IPsec IKE"),
        _udp(4500, "ipsec-nat-t", "vpn", "IPsec NAT traversal"),
        _tcp(1194, "openvpn", "vpn", "OpenVPN default"),
        _udp(1194, "openvpn", "vpn", "OpenVPN default"),
        _tcp(1701, "l2tp", "vpn", "L2TP"),
        _udp(1701, "l2tp", "vpn", "L2TP"),
        _tcp(1723, "pptp", "vpn", "PPTP"),
        _udp(1723, "pptp", "vpn", "PPTP"),
        # TV streaming (Fig 7b).
        _tcp(8200, "tv-streaming", "tv-streaming",
             "online streaming of international TV channels"),
        # Cloudflare load balancer (Fig 7).
        _udp(2408, "cloudflare-lb", "cdn-lb", "Cloudflare load balancing"),
        # Video conferencing.
        _udp(3478, "stun", "webconf", "STUN"),
        _udp(3479, "stun-alt", "webconf", "STUN (alternate)"),
        _udp(3480, "skype-teams-stun", "webconf", "Skype / Microsoft Teams STUN"),
        _tcp(5061, "sip-tls", "webconf", "SIP over TLS"),
        _udp(8801, "zoom-connector", "webconf", "Zoom on-premise connector"),
        _udp(8802, "zoom-connector-alt", "webconf", "Zoom connector (alternate)"),
        # Push notifications and mobile services (Appendix B).
        _tcp(5223, "apns", "push", "Apple push notifications"),
        _tcp(5228, "gcm", "push", "Google play / push services"),
        # Remote desktop (Appendix B).
        _tcp(1494, "citrix-ica", "remote-desktop", "Citrix remote desktop"),
        _udp(1494, "citrix-ica", "remote-desktop", "Citrix remote desktop"),
        _tcp(3389, "rdp", "remote-desktop", "Windows remote desktop"),
        _tcp(5938, "teamviewer", "remote-desktop", "TeamViewer"),
        _udp(5938, "teamviewer", "remote-desktop", "TeamViewer"),
        # SSH (Appendix B).
        _tcp(22, "ssh", "ssh", "secure shell"),
        # Music streaming (Appendix B: Spotify).
        _tcp(4070, "spotify", "music", "Spotify desktop streaming"),
        # The unknown high port of Fig 7 (mostly hosting prefixes).
        _tcp(25461, "unknown-25461", "unknown",
             "unmapped service on hosting prefixes"),
    ]
    # Category blocks below may overlap the explicit registrations above
    # (TCP/5223 is Apple push *and* a common messaging port — the paper
    # acknowledges ports serve multiple applications); the explicit,
    # more specific registration wins.
    taken = {(s.proto, s.port) for s in services}

    def add_unless_taken(service: PortService) -> None:
        if (service.proto, service.port) not in taken:
            taken.add((service.proto, service.port))
            services.append(service)

    for port in EMAIL_PORTS:
        add_unless_taken(_tcp(port, f"email-{port}", "email"))
    for port in MESSAGING_PORTS:
        add_unless_taken(_tcp(port, f"messaging-{port}", "messaging"))
    for port in COLLAB_PORTS:
        add_unless_taken(_tcp(port, f"collab-{port}", "collab"))
    for port in GAMING_PORTS:
        add_unless_taken(_udp(port, f"gaming-{port}", "gaming"))
    return PortRegistry(services)


class PortRegistry:
    """Lookup of :class:`PortService` entries by (protocol, port)."""

    def __init__(self, services: Sequence[PortService]):
        self._by_key: Dict[Tuple[int, int], PortService] = {}
        for service in services:
            key = (service.proto, service.port)
            if key in self._by_key:
                raise ValueError(
                    f"duplicate service registration for {service.key}"
                )
            self._by_key[key] = service

    def __len__(self) -> int:
        return len(self._by_key)

    def get(self, proto: int, port: int) -> Optional[PortService]:
        """The service registered for (``proto``, ``port``), if any."""
        return self._by_key.get((proto, port))

    def service_name(self, proto: int, port: int) -> str:
        """Service name, or the bare ``PROTO/port`` label if unknown."""
        service = self.get(proto, port)
        if service:
            return service.service
        return f"{proto_name(proto)}/{port}"

    def category(self, proto: int, port: int) -> Optional[str]:
        """Category of (``proto``, ``port``), or None if unregistered."""
        service = self.get(proto, port)
        return service.category if service else None

    def ports_in_category(self, category: str) -> List[PortService]:
        """All services tagged with ``category``, sorted by key."""
        found = [s for s in self._by_key.values() if s.category == category]
        return sorted(found, key=lambda s: (s.proto, s.port))

    def distinct_ports_in_category(self, category: str) -> FrozenSet[int]:
        """Distinct port numbers tagged with ``category``."""
        return frozenset(s.port for s in self.ports_in_category(category))
