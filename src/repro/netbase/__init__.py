"""Network metadata substrate.

Static knowledge the paper's analyses rely on:

* :mod:`repro.netbase.asdb` — an AS registry with organization names and
  categories, including the paper's Table 2 hypergiant list verbatim and
  synthetic populations of eyeball / enterprise / hosting ASes,
* :mod:`repro.netbase.prefixes` — deterministic IPv4 prefix allocation
  per AS with fast address-to-AS lookup,
* :mod:`repro.netbase.ports` — an IANA-like port/service registry
  covering every port discussed in the paper,
* :mod:`repro.netbase.members` — an IXP member database (PeeringDB-like)
  with per-member port capacities.
"""

from repro.netbase.asdb import (
    ASCategory,
    ASInfo,
    ASRegistry,
    HYPERGIANTS,
    build_default_registry,
)
from repro.netbase.prefixes import PrefixAllocator, PrefixMap
from repro.netbase.ports import PortService, PortRegistry, default_port_registry
from repro.netbase.members import IXPMember, IXPMemberDB, build_member_db

__all__ = [
    "ASCategory",
    "ASInfo",
    "ASRegistry",
    "HYPERGIANTS",
    "build_default_registry",
    "PrefixAllocator",
    "PrefixMap",
    "PortService",
    "PortRegistry",
    "default_port_registry",
    "IXPMember",
    "IXPMemberDB",
    "build_member_db",
]
