"""Persistence for flow tables.

Three formats:

* **CSV** — human-readable, one header row, for small tables, examples,
  and interchange with external tools.
* **NPZ** — compressed numpy archive, one entry per column, for large
  synthetic traces.  Loading is zero-copy-ish and orders of magnitude
  faster than CSV.
* **NPY column segments** — one raw ``.npy`` file per column, the
  physical layer of the v2 columnar partition format
  (:mod:`repro.flows.colstore`).  Raw segments support true zero-copy
  reads: ``np.load(..., mmap_mode="r")`` maps the file instead of
  decompressing it, so a projected query touches only the bytes of the
  columns it references.
"""

from __future__ import annotations

import csv
import hashlib
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.flows.record import FlowRecord
from repro.flows.table import COLUMNS, FlowTable

PathLike = Union[str, Path]

_CSV_HEADER = list(COLUMNS)


def write_csv(table: FlowTable, path: PathLike) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        columns = [table.column(name) for name in _CSV_HEADER]
        for row in zip(*columns):
            writer.writerow([int(v) for v in row])


def read_csv(path: PathLike) -> FlowTable:
    """Read a flow table previously written by :func:`write_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r}"
            )
        rows = [[int(v) for v in row] for row in reader if row]
    columns = {
        name: np.array([row[i] for row in rows], dtype=dtype)
        for i, (name, dtype) in enumerate(COLUMNS.items())
    }
    return FlowTable(columns)


def iter_csv_records(path: PathLike) -> Iterator[FlowRecord]:
    """Stream records from a CSV flow file without loading it whole."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r}"
            )
        for row in reader:
            if not row:
                continue
            values = dict(zip(_CSV_HEADER, (int(v) for v in row)))
            yield FlowRecord(**values)


def write_npz(table: FlowTable, path: PathLike) -> None:
    """Write ``table`` to ``path`` as a compressed numpy archive."""
    np.savez_compressed(
        Path(path), **{name: table.column(name) for name in COLUMNS}
    )


def read_npz(path: PathLike) -> FlowTable:
    """Read a flow table previously written by :func:`write_npz`."""
    with np.load(Path(path)) as archive:
        missing = set(COLUMNS) - set(archive.files)
        if missing:
            raise ValueError(
                f"flow archive {path} is missing columns: {sorted(missing)}"
            )
        columns = {name: archive[name] for name in COLUMNS}
    return FlowTable(columns)


def file_sha256(path: PathLike) -> str:
    """Hex SHA-256 of a file's bytes (streamed in 1 MiB chunks)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def write_npy_segment(array: np.ndarray, path: PathLike) -> str:
    """Write one column as an uncompressed ``.npy`` segment.

    Returns the segment file's hex SHA-256 (recorded in the partition
    sidecar and verified on load).
    """
    path = Path(path)
    # Contiguity matters: np.save of a non-contiguous view would copy
    # anyway, and mmap readers expect the canonical row order.
    np.save(path, np.ascontiguousarray(array))
    return file_sha256(path)


def read_npy_segment(
    path: PathLike,
    dtype: np.dtype,
    rows: int,
    mmap: bool = True,
) -> np.ndarray:
    """Load one ``.npy`` column segment, validating its shape and dtype.

    ``mmap=True`` memory-maps the file (zero-copy, read-only);
    ``mmap=False`` reads it fully into memory.  A segment whose dtype
    or length disagrees with the partition sidecar raises
    ``ValueError`` — that is corruption, not a formatting nicety.
    """
    array = np.load(Path(path), mmap_mode="r" if mmap else None)
    if array.dtype != dtype or array.ndim != 1 or array.shape[0] != rows:
        raise ValueError(
            f"column segment {path} has dtype={array.dtype} "
            f"shape={array.shape}, expected dtype={dtype} shape=({rows},)"
        )
    return array
