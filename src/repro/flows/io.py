"""Persistence for flow tables.

Two formats:

* **CSV** — human-readable, one header row, for small tables, examples,
  and interchange with external tools.
* **NPZ** — compressed numpy archive, one entry per column, for large
  synthetic traces.  Loading is zero-copy-ish and orders of magnitude
  faster than CSV.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.flows.record import FlowRecord
from repro.flows.table import COLUMNS, FlowTable

PathLike = Union[str, Path]

_CSV_HEADER = list(COLUMNS)


def write_csv(table: FlowTable, path: PathLike) -> None:
    """Write ``table`` to ``path`` as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        columns = [table.column(name) for name in _CSV_HEADER]
        for row in zip(*columns):
            writer.writerow([int(v) for v in row])


def read_csv(path: PathLike) -> FlowTable:
    """Read a flow table previously written by :func:`write_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r}"
            )
        rows = [[int(v) for v in row] for row in reader if row]
    columns = {
        name: np.array([row[i] for row in rows], dtype=dtype)
        for i, (name, dtype) in enumerate(COLUMNS.items())
    }
    return FlowTable(columns)


def iter_csv_records(path: PathLike) -> Iterator[FlowRecord]:
    """Stream records from a CSV flow file without loading it whole."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"unexpected CSV header in {path}: {header!r}"
            )
        for row in reader:
            if not row:
                continue
            values = dict(zip(_CSV_HEADER, (int(v) for v in row)))
            yield FlowRecord(**values)


def write_npz(table: FlowTable, path: PathLike) -> None:
    """Write ``table`` to ``path`` as a compressed numpy archive."""
    np.savez_compressed(
        Path(path), **{name: table.column(name) for name in COLUMNS}
    )


def read_npz(path: PathLike) -> FlowTable:
    """Read a flow table previously written by :func:`write_npz`."""
    with np.load(Path(path)) as archive:
        missing = set(COLUMNS) - set(archive.files)
        if missing:
            raise ValueError(
                f"flow archive {path} is missing columns: {sorted(missing)}"
            )
        columns = {name: archive[name] for name in COLUMNS}
    return FlowTable(columns)
