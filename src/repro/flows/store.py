"""Partitioned on-disk flow store.

Vantage-point captures span months (the EDU capture alone is 71 days);
analyses usually touch a handful of named weeks.  ``FlowStore`` keeps a
directory of per-day partitions plus a JSON manifest, so date-range
queries load only the partitions they need.

Two partition formats coexist under one manifest:

* **v1** — one compressed ``.npz`` archive per day
  (``2020-03-25.npz``); reads decompress and checksum the whole
  archive.
* **v2** — one directory per day holding raw per-column ``.npy``
  segments plus a zone-map sidecar (see
  :mod:`repro.flows.colstore`); reads memory-map only the columns a
  query references and verify checksums per loaded column.
* **v3** — one directory per day holding a single ``segments.bin`` of
  per-column *encoded* parts (dictionary / delta+bit-pack / raw) plus
  bitmap indexes, described by the same sidecar discipline; scans can
  evaluate predicates on dictionary codes or bitmap rows before
  materializing any row data.

New writes default to v3 (v2 under ``REPRO_NO_COLSTORE_V3``, v1 under
``REPRO_NO_COLSTORE``), the manifest records each partition's format,
and :meth:`FlowStore.migrate` rewrites partitions between any two
formats in place — atomically, one day at a time.

Writes are append-only at day granularity; re-writing a day replaces
its partition atomically (write to a temp name, then rename).

Every partition's manifest entry records a SHA-256 — of the archive
bytes (v1) or of the sidecar, which in turn records per-column segment
hashes (v2).  Reads verify the chain, so a truncated or corrupted
partition raises a :class:`FlowStoreError` instead of surfacing as a
numpy/zipfile internal error (or, worse, as silently wrong data); the
query planner turns that into a per-partition failure rather than a
crashed query.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
import shutil
import threading
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import timebase
from repro.flows import colstore
from repro.flows.colstore import (
    FORMAT_V1,
    FORMAT_V2,
    FORMAT_V3,
    FlowStoreError,
)
from repro.flows.io import file_sha256, read_npz, write_npz
from repro.flows.table import COLUMNS, FlowTable

__all__ = [
    "FORMAT_V1",
    "FORMAT_V2",
    "FORMAT_V3",
    "FlowStore",
    "FlowStoreError",
    "open_cached",
]

#: Every format the store can read and write.
_ALL_FORMATS = (FORMAT_V1, FORMAT_V2, FORMAT_V3)

PathLike = Union[str, Path]

_MANIFEST = "manifest.json"


class FlowStore:
    """A date-partitioned flow archive under one directory."""

    def __init__(self, root: PathLike,
                 default_format: Optional[int] = None):
        """Open (or create) a store.

        ``default_format`` fixes the partition format for new writes;
        by default it follows the colstore switches — v3, or v2 under
        ``REPRO_NO_COLSTORE_V3``, or v1 under ``REPRO_NO_COLSTORE``.
        """
        if default_format is not None and default_format not in _ALL_FORMATS:
            raise ValueError(
                f"unknown partition format {default_format!r}; "
                f"use one of {_ALL_FORMATS}"
            )
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._default_format = default_format
        self._manifest: Dict[str, Dict[str, object]] = {}
        self._partitions: Dict[tuple, colstore.ColumnarPartition] = {}
        manifest_path = self._root / _MANIFEST
        if manifest_path.exists():
            with manifest_path.open() as handle:
                self._manifest = json.load(handle)

    # -- helpers ------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The store's directory."""
        return self._root

    @property
    def default_format(self) -> int:
        """The format new partitions are written in."""
        if self._default_format is not None:
            return self._default_format
        if not colstore.enabled():
            return FORMAT_V1
        return FORMAT_V3 if colstore.v3_enabled() else FORMAT_V2

    def state_token(self) -> str:
        """Hex digest identifying the store's current contents.

        Derived from the manifest (day set, flow/byte totals, formats,
        and the per-partition checksums), so any write, delete,
        re-write, or migration changes it.  The query service keys its
        result cache on ``(query fingerprint, state token)`` — a
        mutated store can never serve stale cached results.
        """
        payload = json.dumps(self._manifest, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _partition_path(self, day: _dt.date) -> Path:
        return self._root / f"{day.isoformat()}.npz"

    def _partition_dir(self, day: _dt.date) -> Path:
        return self._root / day.isoformat()

    def _save_manifest(self) -> None:
        temp = self._root / (_MANIFEST + ".tmp")
        with temp.open("w") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
        os.replace(temp, self._root / _MANIFEST)

    def _invalidate(self, key: str) -> None:
        """Drop cached partition handles for one rewritten/deleted day."""
        for cache_key in [k for k in self._partitions if k[0] == key]:
            del self._partitions[cache_key]

    # -- inventory ------------------------------------------------------------

    def days(self) -> List[_dt.date]:
        """Days with a stored partition, ascending."""
        return sorted(_dt.date.fromisoformat(k) for k in self._manifest)

    def __contains__(self, day: _dt.date) -> bool:
        return day.isoformat() in self._manifest

    def __len__(self) -> int:
        return len(self._manifest)

    def day_flows(self, day: _dt.date) -> int:
        """Flow records in one day's partition (from the manifest)."""
        entry = self._manifest.get(day.isoformat())
        if entry is None:
            raise KeyError(f"no partition for {day}")
        return int(entry["flows"])

    def partition_format(self, day: _dt.date) -> int:
        """The stored format of one day's partition (1, 2, or 3)."""
        entry = self._manifest.get(day.isoformat())
        if entry is None:
            raise KeyError(f"no partition for {day}")
        return int(entry.get("format", FORMAT_V1))

    def format_counts(self) -> Dict[int, int]:
        """Partition count per format version (inventory/CLI)."""
        counts: Dict[int, int] = {}
        for entry in self._manifest.values():
            fmt = int(entry.get("format", FORMAT_V1))
            counts[fmt] = counts.get(fmt, 0) + 1
        return counts

    def partition_disk_bytes(self, day: _dt.date) -> int:
        """Approximate bytes behind one partition (planner estimates).

        Segment bytes for v2 directories, encoded part bytes for v3,
        archive size for v1 files; zero when the partition cannot be
        inspected — estimation must never fail a query that the scan
        itself could still serve.
        """
        entry = self._entry(day)
        if int(entry.get("format", FORMAT_V1)) in (FORMAT_V2, FORMAT_V3):
            try:
                partition = self.open_partition(day)
            except FlowStoreError:
                return 0
            return partition.column_nbytes(tuple(COLUMNS))
        try:
            return self._partition_path(day).stat().st_size
        except OSError:
            return 0

    def column_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-column storage stats aggregated over v2/v3 partitions.

        Maps column name to summed raw vs. stored bytes, the set of
        encodings chosen across partitions, the largest dictionary
        cardinality seen, and total bitmap-index bytes.  v1 partitions
        carry no per-column layout and are skipped (their count is in
        :meth:`format_counts`).  Backs ``repro store stats``.
        """
        totals: Dict[str, Dict[str, object]] = {}
        for day in self.days():
            try:
                partition = self.open_partition(day)
            except FlowStoreError:
                continue
            if partition is None:
                continue
            for name, stat in partition.encoding_stats().items():
                entry = totals.setdefault(name, {
                    "raw_nbytes": 0,
                    "stored_nbytes": 0,
                    "index_nbytes": 0,
                    "encodings": set(),
                    "max_cardinality": None,
                })
                entry["raw_nbytes"] += int(stat["raw_nbytes"])
                entry["stored_nbytes"] += int(stat["stored_nbytes"])
                entry["index_nbytes"] += int(stat.get("index_nbytes", 0))
                entry["encodings"].add(str(stat["encoding"]))
                card = stat.get("cardinality")
                if card is not None:
                    prev = entry["max_cardinality"]
                    entry["max_cardinality"] = (
                        int(card) if prev is None else max(prev, int(card))
                    )
        for entry in totals.values():
            entry["encodings"] = sorted(entry["encodings"])
        return totals

    def total_flows(self) -> int:
        """Flow records across all partitions (from the manifest)."""
        return sum(int(e["flows"]) for e in self._manifest.values())

    def total_bytes(self) -> int:
        """Traffic bytes across all partitions (from the manifest)."""
        return sum(int(e["bytes"]) for e in self._manifest.values())

    # -- writes -----------------------------------------------------------------

    def write_day(self, day: _dt.date, flows: FlowTable,
                  partition_format: Optional[int] = None) -> None:
        """Store one day's flows, replacing any existing partition.

        Every flow must fall inside ``day``'s 24 hourly bins; mixing
        days in one partition would silently corrupt range queries.
        ``partition_format`` overrides the store's default for this
        write (the migration path).
        """
        start = timebase.hour_index(day, 0)
        hours = flows.column("hour")
        if len(flows) and (
            int(hours.min()) < start or int(hours.max()) >= start + 24
        ):
            raise ValueError(
                f"flows outside {day} cannot go into its partition"
            )
        fmt = partition_format or self.default_format
        if fmt not in _ALL_FORMATS:
            raise ValueError(f"unknown partition format {fmt!r}")
        key = day.isoformat()
        if fmt in (FORMAT_V2, FORMAT_V3):
            _, sidecar_sha = colstore.write_partition(
                flows, self._partition_dir(day), start, fmt=fmt
            )
            checksum = sidecar_sha
            # Drop a leftover v1 archive from a format switch.
            if self._partition_path(day).exists():
                self._partition_path(day).unlink()
        else:
            final = self._partition_path(day)
            # The temp name must end in .npz or numpy appends the suffix.
            temp = final.with_suffix(".tmp.npz")
            write_npz(flows, temp)
            checksum = file_sha256(temp)
            os.replace(temp, final)
            if self._partition_dir(day).exists():
                shutil.rmtree(self._partition_dir(day))
        entry: Dict[str, object] = {
            "flows": len(flows),
            "bytes": flows.total_bytes(),
            "sha256": checksum,
        }
        if fmt != FORMAT_V1:
            entry["format"] = fmt
        self._manifest[key] = entry
        self._invalidate(key)
        self._save_manifest()

    def write_range(
        self, flows: FlowTable, start_day: _dt.date, end_day: _dt.date,
        partition_format: Optional[int] = None,
    ) -> int:
        """Partition a multi-day table into daily partitions.

        Returns the number of partitions written.  Days inside the
        range with no flows get an empty partition, making subsequent
        coverage checks unambiguous.
        """
        if end_day < start_day:
            raise ValueError("end_day precedes start_day")
        hours = flows.column("hour")
        written = 0
        for day in timebase.iter_days(start_day, end_day):
            day_start = timebase.hour_index(day, 0)
            mask = (hours >= day_start) & (hours < day_start + 24)
            self.write_day(day, flows.filter(mask),
                           partition_format=partition_format)
            written += 1
        return written

    def delete_day(self, day: _dt.date) -> None:
        """Remove a day's partition; missing days are a no-op."""
        key = day.isoformat()
        if key not in self._manifest:
            return
        path = self._partition_path(day)
        if path.exists():
            path.unlink()
        directory = self._partition_dir(day)
        if directory.exists():
            shutil.rmtree(directory)
        del self._manifest[key]
        self._invalidate(key)
        self._save_manifest()

    def migrate(self, to_format: int = FORMAT_V2) -> int:
        """Rewrite partitions stored in another format, in place.

        Each day is read fully (checksums verified), rewritten in
        ``to_format`` with the usual tmp+rename swap, and its manifest
        entry updated — so a crash mid-migration leaves every partition
        either fully old or fully new.  Returns the number of
        partitions rewritten; already-converted days are untouched.
        """
        if to_format not in _ALL_FORMATS:
            raise ValueError(f"unknown partition format {to_format!r}")
        migrated = 0
        for day in self.days():
            if self.partition_format(day) == to_format:
                continue
            flows = self.read_day(day)
            self.write_day(day, flows, partition_format=to_format)
            migrated += 1
        return migrated

    # -- reads ---------------------------------------------------------------------

    def _entry(self, day: _dt.date) -> Dict[str, object]:
        if day not in self:
            raise KeyError(f"no partition for {day}")
        return self._manifest[day.isoformat()]

    def open_partition(
        self, day: _dt.date
    ) -> Optional[colstore.ColumnarPartition]:
        """A :class:`~repro.flows.colstore.ColumnarPartition` handle, or
        ``None`` for v1 partitions.

        The sidecar is verified against the manifest hash and the
        *handle* is cached per ``(day, sha)``, so repeated queries pay
        one JSON parse and — for v3 — keep one ``segments.bin``
        mapping open instead of re-mmapping per scan.  Rewriting a day
        changes its manifest sha, which drops the stale handle.
        """
        entry = self._entry(day)
        if int(entry.get("format", FORMAT_V1)) not in (FORMAT_V2, FORMAT_V3):
            return None
        key = day.isoformat()
        cache_key = (key, entry.get("sha256"))
        partition = self._partitions.get(cache_key)
        if partition is None:
            directory = self._partition_dir(day)
            if not directory.exists():
                raise FlowStoreError(
                    f"partition directory for {day} is missing from "
                    f"{self._root}"
                )
            sidecar = colstore.read_sidecar(
                directory,
                str(entry["sha256"]) if entry.get("sha256") else None,
                f"partition {key}",
            )
            if int(sidecar["rows"]) != int(entry["flows"]):
                raise FlowStoreError(
                    f"partition for {day} is corrupt: sidecar reports "
                    f"{sidecar['rows']} rows, manifest {entry['flows']}"
                )
            partition = colstore.ColumnarPartition(
                key, self._partition_dir(day), sidecar
            )
            self._partitions[cache_key] = partition
        return partition

    def _read_day_v1(self, day: _dt.date) -> FlowTable:
        path = self._partition_path(day)
        if not path.exists():
            raise FlowStoreError(
                f"partition file for {day} is missing from {self._root}"
            )
        expected = self._entry(day).get("sha256")
        if expected is not None:
            actual = file_sha256(path)
            if actual != expected:
                raise FlowStoreError(
                    f"partition for {day} is corrupt: checksum "
                    f"{actual[:12]}… does not match the manifest's "
                    f"{str(expected)[:12]}…"
                )
        try:
            return read_npz(path)
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as exc:
            raise FlowStoreError(
                f"partition for {day} cannot be read: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def read_day(self, day: _dt.date) -> FlowTable:
        """Load one day's partition, verifying its content checksums.

        Raises ``KeyError`` if the day has no manifest entry and
        :class:`FlowStoreError` if the partition is missing, fails a
        checksum, or cannot be parsed.  v2 partitions are memory-mapped
        when the colstore is enabled and read fully into memory under
        ``REPRO_NO_COLSTORE``; either way every column is verified.
        """
        partition = self.open_partition(day)
        if partition is None:
            return self._read_day_v1(day)
        return partition.table(mmap=colstore.enabled())

    def read_range(
        self, start_day: _dt.date, end_day: _dt.date,
        require_complete: bool = False,
    ) -> FlowTable:
        """Load all partitions in a date range (inclusive).

        Missing days are skipped unless ``require_complete`` is set.
        """
        if end_day < start_day:
            raise ValueError("end_day precedes start_day")
        tables = []
        for day in timebase.iter_days(start_day, end_day):
            if day in self:
                tables.append(self.read_day(day))
            elif require_complete:
                raise KeyError(f"missing partition for {day}")
        return FlowTable.concat(tables)

    def read_week(self, week: timebase.Week,
                  require_complete: bool = True) -> FlowTable:
        """Load one named analysis week."""
        return self.read_range(week.start, week.end, require_complete)

    def iter_days(self) -> Iterator[tuple]:
        """Yield (day, flows) over all partitions in date order.

        Streams one partition at a time — pair with
        :class:`repro.core.streaming.StreamingAggregator` for traces
        larger than memory.
        """
        for day in self.days():
            yield day, self.read_day(day)


# -- per-process open cache ---------------------------------------------------

#: root path → (manifest identity, opened store).  Process-local by
#: construction: fork'd scan workers each start with a copy and then
#: diverge, so one worker's cache never aliases another's mmaps.
_OPEN_STORES: Dict[str, Tuple[Tuple[int, int], "FlowStore"]] = {}
_OPEN_LOCK = threading.Lock()


def open_cached(root: PathLike) -> FlowStore:
    """Open ``root`` through the per-process verified-open cache.

    Keyed by the manifest file's ``(mtime_ns, size)`` identity, so a
    store rewritten between queries is reopened (and re-verified)
    rather than served from a stale manifest, while repeat opens of an
    unchanged store reuse the parsed manifest *and* its verified
    sidecar cache.  This is what shard-scan workers call: the first
    shard a worker sees pays the manifest parse, every later shard is
    a dictionary hit.
    """
    path = Path(root)
    key = str(path)
    try:
        stat = (path / _MANIFEST).stat()
        identity = (stat.st_mtime_ns, stat.st_size)
    except OSError:
        identity = (0, 0)
    with _OPEN_LOCK:
        cached = _OPEN_STORES.get(key)
        if cached is not None and cached[0] == identity:
            return cached[1]
    store = FlowStore(path)
    with _OPEN_LOCK:
        _OPEN_STORES[key] = (identity, store)
    return store
