"""Partitioned on-disk flow store.

Vantage-point captures span months (the EDU capture alone is 71 days);
analyses usually touch a handful of named weeks.  ``FlowStore`` keeps a
directory of per-day NPZ partitions plus a JSON manifest, so date-range
queries load only the partitions they need:

    store/
      manifest.json          {"2020-03-25": {"flows": N, "bytes": B}, ...}
      2020-03-25.npz         one day's flows
      ...

Writes are append-only at day granularity; re-writing a day replaces
its partition atomically (write to a temp name, then rename).

Every partition's manifest entry records a SHA-256 of the archive
bytes.  Reads verify it, so a truncated or corrupted ``.npz`` raises a
:class:`FlowStoreError` instead of surfacing as a numpy/zipfile
internal error (or, worse, as silently wrong data); the query planner
turns that into a per-partition failure rather than a crashed query.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Iterator, List, Union

import numpy as np

from repro import timebase
from repro.flows.io import read_npz, write_npz
from repro.flows.table import FlowTable

PathLike = Union[str, Path]

_MANIFEST = "manifest.json"


class FlowStoreError(Exception):
    """A partition that exists in the manifest cannot be served.

    Raised for missing partition files, checksum mismatches, and
    archives that fail to parse — all the ways a store directory can
    rot underneath its manifest.
    """


def _file_sha256(path: Path) -> str:
    """Hex SHA-256 of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class FlowStore:
    """A date-partitioned flow archive under one directory."""

    def __init__(self, root: PathLike):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._manifest: Dict[str, Dict[str, int]] = {}
        manifest_path = self._root / _MANIFEST
        if manifest_path.exists():
            with manifest_path.open() as handle:
                self._manifest = json.load(handle)

    # -- helpers ------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The store's directory."""
        return self._root

    def state_token(self) -> str:
        """Hex digest identifying the store's current contents.

        Derived from the manifest (day set, flow/byte totals, and the
        per-partition checksums), so any write, delete, or re-write
        changes it.  The query service keys its result cache on
        ``(query fingerprint, state token)`` — a mutated store can
        never serve stale cached results.
        """
        payload = json.dumps(self._manifest, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _partition_path(self, day: _dt.date) -> Path:
        return self._root / f"{day.isoformat()}.npz"

    def _save_manifest(self) -> None:
        temp = self._root / (_MANIFEST + ".tmp")
        with temp.open("w") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
        os.replace(temp, self._root / _MANIFEST)

    # -- inventory ------------------------------------------------------------

    def days(self) -> List[_dt.date]:
        """Days with a stored partition, ascending."""
        return sorted(_dt.date.fromisoformat(k) for k in self._manifest)

    def __contains__(self, day: _dt.date) -> bool:
        return day.isoformat() in self._manifest

    def __len__(self) -> int:
        return len(self._manifest)

    def day_flows(self, day: _dt.date) -> int:
        """Flow records in one day's partition (from the manifest)."""
        entry = self._manifest.get(day.isoformat())
        if entry is None:
            raise KeyError(f"no partition for {day}")
        return int(entry["flows"])

    def total_flows(self) -> int:
        """Flow records across all partitions (from the manifest)."""
        return sum(entry["flows"] for entry in self._manifest.values())

    def total_bytes(self) -> int:
        """Traffic bytes across all partitions (from the manifest)."""
        return sum(entry["bytes"] for entry in self._manifest.values())

    # -- writes -----------------------------------------------------------------

    def write_day(self, day: _dt.date, flows: FlowTable) -> None:
        """Store one day's flows, replacing any existing partition.

        Every flow must fall inside ``day``'s 24 hourly bins; mixing
        days in one partition would silently corrupt range queries.
        """
        start = timebase.hour_index(day, 0)
        hours = flows.column("hour")
        if len(flows) and (
            int(hours.min()) < start or int(hours.max()) >= start + 24
        ):
            raise ValueError(
                f"flows outside {day} cannot go into its partition"
            )
        final = self._partition_path(day)
        # The temp name must end in .npz or numpy appends the suffix.
        temp = final.with_suffix(".tmp.npz")
        write_npz(flows, temp)
        checksum = _file_sha256(temp)
        os.replace(temp, final)
        self._manifest[day.isoformat()] = {
            "flows": len(flows),
            "bytes": flows.total_bytes(),
            "sha256": checksum,
        }
        self._save_manifest()

    def write_range(
        self, flows: FlowTable, start_day: _dt.date, end_day: _dt.date
    ) -> int:
        """Partition a multi-day table into daily partitions.

        Returns the number of partitions written.  Days inside the
        range with no flows get an empty partition, making subsequent
        coverage checks unambiguous.
        """
        if end_day < start_day:
            raise ValueError("end_day precedes start_day")
        hours = flows.column("hour")
        written = 0
        for day in timebase.iter_days(start_day, end_day):
            day_start = timebase.hour_index(day, 0)
            mask = (hours >= day_start) & (hours < day_start + 24)
            self.write_day(day, flows.filter(mask))
            written += 1
        return written

    def delete_day(self, day: _dt.date) -> None:
        """Remove a day's partition; missing days are a no-op."""
        key = day.isoformat()
        if key not in self._manifest:
            return
        path = self._partition_path(day)
        if path.exists():
            path.unlink()
        del self._manifest[key]
        self._save_manifest()

    # -- reads ---------------------------------------------------------------------

    def read_day(self, day: _dt.date) -> FlowTable:
        """Load one day's partition, verifying its content checksum.

        Raises ``KeyError`` if the day has no manifest entry and
        :class:`FlowStoreError` if the partition file is missing,
        fails its checksum, or cannot be parsed.
        """
        if day not in self:
            raise KeyError(f"no partition for {day}")
        path = self._partition_path(day)
        if not path.exists():
            raise FlowStoreError(
                f"partition file for {day} is missing from {self._root}"
            )
        expected = self._manifest[day.isoformat()].get("sha256")
        if expected is not None:
            actual = _file_sha256(path)
            if actual != expected:
                raise FlowStoreError(
                    f"partition for {day} is corrupt: checksum "
                    f"{actual[:12]}… does not match the manifest's "
                    f"{expected[:12]}…"
                )
        try:
            return read_npz(path)
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as exc:
            raise FlowStoreError(
                f"partition for {day} cannot be read: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def read_range(
        self, start_day: _dt.date, end_day: _dt.date,
        require_complete: bool = False,
    ) -> FlowTable:
        """Load all partitions in a date range (inclusive).

        Missing days are skipped unless ``require_complete`` is set.
        """
        if end_day < start_day:
            raise ValueError("end_day precedes start_day")
        tables = []
        for day in timebase.iter_days(start_day, end_day):
            if day in self:
                tables.append(self.read_day(day))
            elif require_complete:
                raise KeyError(f"missing partition for {day}")
        return FlowTable.concat(tables)

    def read_week(self, week: timebase.Week,
                  require_complete: bool = True) -> FlowTable:
        """Load one named analysis week."""
        return self.read_range(week.start, week.end, require_complete)

    def iter_days(self) -> Iterator[tuple]:
        """Yield (day, flows) over all partitions in date order.

        Streams one partition at a time — pair with
        :class:`repro.core.streaming.StreamingAggregator` for traces
        larger than memory.
        """
        for day in self.days():
            yield day, self.read_day(day)
