"""IPFIX (RFC 7011) export and collection.

The three IXPs export IPFIX (§2).  This module implements the message
layout for the flow summaries the paper's analyses need: a 16-byte
message header, a template set announcing the information elements, and
data sets encoded per that template.  Unlike NetFlow v5, IPFIX carries
32-bit AS numbers and 64-bit counters, so the round trip is lossless
for every synthetic trace.

Information elements used (IANA registry):

====  ==========================  =====
IE    name                        bytes
====  ==========================  =====
8     sourceIPv4Address           4
12    destinationIPv4Address      4
16    bgpSourceAsNumber           4
17    bgpDestinationAsNumber      4
4     protocolIdentifier          1
7     sourceTransportPort         2
11    destinationTransportPort    2
1     octetDeltaCount             8
2     packetDeltaCount            8
150   flowStartSeconds            4
278   connectionCountNew          8
====  ==========================  =====
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.flows.record import FlowRecord
from repro.flows.table import FlowTable

#: IPFIX protocol version.
VERSION = 10

#: Set id announcing templates.
TEMPLATE_SET_ID = 2

#: First set id usable for data sets.
MIN_DATA_SET_ID = 256

#: Template id used by the exporter.
DEFAULT_TEMPLATE_ID = 256

#: Unix timestamp of the study epoch (2020-01-01 00:00:00 UTC).
STUDY_EPOCH_UNIX = 1577836800

#: (information element id, length) pairs of the export template, in
#: record order.
TEMPLATE_FIELDS: Tuple[Tuple[int, int], ...] = (
    (8, 4),  # sourceIPv4Address
    (12, 4),  # destinationIPv4Address
    (16, 4),  # bgpSourceAsNumber
    (17, 4),  # bgpDestinationAsNumber
    (4, 1),  # protocolIdentifier
    (7, 2),  # sourceTransportPort
    (11, 2),  # destinationTransportPort
    (1, 8),  # octetDeltaCount
    (2, 8),  # packetDeltaCount
    (150, 4),  # flowStartSeconds
    (278, 8),  # connectionCountNew
)

_MESSAGE_HEADER = struct.Struct("!HHIII")
_SET_HEADER = struct.Struct("!HH")
_RECORD = struct.Struct("!IIIIBHHQQIQ")

_RECORD_LENGTH = sum(length for _, length in TEMPLATE_FIELDS)
assert _RECORD.size == _RECORD_LENGTH


@dataclass(frozen=True)
class Template:
    """A decoded IPFIX template."""

    template_id: int
    fields: Tuple[Tuple[int, int], ...]

    @property
    def record_length(self) -> int:
        """Bytes per data record under this template."""
        return sum(length for _, length in self.fields)


def _encode_template_set(template_id: int) -> bytes:
    body = struct.pack("!HH", template_id, len(TEMPLATE_FIELDS))
    for element_id, length in TEMPLATE_FIELDS:
        body += struct.pack("!HH", element_id, length)
    return _SET_HEADER.pack(TEMPLATE_SET_ID, _SET_HEADER.size + len(body)) + body


def _encode_record(record: FlowRecord) -> bytes:
    return _RECORD.pack(
        record.src_ip,
        record.dst_ip,
        record.src_asn,
        record.dst_asn,
        record.proto,
        record.src_port,
        record.dst_port,
        record.n_bytes,
        record.n_packets,
        STUDY_EPOCH_UNIX + record.hour * 3600,
        record.connections,
    )


def encode_messages(
    table: FlowTable,
    observation_domain: int = 1,
    template_id: int = DEFAULT_TEMPLATE_ID,
    max_records_per_message: int = 100,
    first_sequence: int = 0,
) -> List[bytes]:
    """Encode a flow table as IPFIX messages.

    The first message carries the template set followed by a data set;
    subsequent messages carry data sets only (collectors cache
    templates per observation domain).  The sequence number counts data
    records, per RFC 7011.
    """
    if template_id < MIN_DATA_SET_ID:
        raise ValueError(
            f"template id must be >= {MIN_DATA_SET_ID}, got {template_id}"
        )
    if max_records_per_message <= 0:
        raise ValueError("max_records_per_message must be positive")
    messages: List[bytes] = []
    records = list(table)
    sequence = first_sequence
    for offset in range(0, max(len(records), 1), max_records_per_message):
        batch = records[offset : offset + max_records_per_message]
        if not batch and messages:
            break
        sets = b""
        if offset == 0:
            sets += _encode_template_set(template_id)
        if batch:
            body = b"".join(_encode_record(r) for r in batch)
            sets += _SET_HEADER.pack(
                template_id, _SET_HEADER.size + len(body)
            ) + body
        export_time = STUDY_EPOCH_UNIX + (
            batch[0].hour * 3600 if batch else 0
        )
        header = _MESSAGE_HEADER.pack(
            VERSION,
            _MESSAGE_HEADER.size + len(sets),
            export_time,
            sequence,
            observation_domain,
        )
        messages.append(header + sets)
        sequence = (sequence + len(batch)) % (2**32)
        if not records:
            break
    return messages


class Collector:
    """A minimal IPFIX collector: caches templates, decodes data sets."""

    def __init__(self) -> None:
        self._templates: Dict[Tuple[int, int], Template] = {}
        self.records: List[FlowRecord] = []

    def feed(self, message: bytes) -> int:
        """Ingest one message; returns the number of decoded records.

        Data sets for unknown templates are skipped (the RFC-prescribed
        behavior until the template arrives).
        """
        if len(message) < _MESSAGE_HEADER.size:
            raise ValueError("message shorter than the IPFIX header")
        version, length, _export_time, _sequence, domain = (
            _MESSAGE_HEADER.unpack_from(message)
        )
        if version != VERSION:
            raise ValueError(f"not an IPFIX message (version {version})")
        if length > len(message):
            raise ValueError("truncated IPFIX message")
        decoded = 0
        offset = _MESSAGE_HEADER.size
        while offset + _SET_HEADER.size <= length:
            set_id, set_length = _SET_HEADER.unpack_from(message, offset)
            if set_length < _SET_HEADER.size:
                raise ValueError("malformed set length")
            body = message[offset + _SET_HEADER.size : offset + set_length]
            if set_id == TEMPLATE_SET_ID:
                self._ingest_template(domain, body)
            elif set_id >= MIN_DATA_SET_ID:
                decoded += self._ingest_data(domain, set_id, body)
            offset += set_length
        return decoded

    def _ingest_template(self, domain: int, body: bytes) -> None:
        offset = 0
        while offset + 4 <= len(body):
            template_id, field_count = struct.unpack_from("!HH", body, offset)
            offset += 4
            fields = []
            for _ in range(field_count):
                element_id, length = struct.unpack_from("!HH", body, offset)
                fields.append((element_id, length))
                offset += 4
            self._templates[(domain, template_id)] = Template(
                template_id, tuple(fields)
            )

    def _ingest_data(self, domain: int, set_id: int, body: bytes) -> int:
        template = self._templates.get((domain, set_id))
        if template is None:
            return 0  # template not yet seen; skip per RFC 7011 §8
        if template.fields != TEMPLATE_FIELDS:
            raise ValueError(
                "collector only understands the exporter's template"
            )
        count = len(body) // template.record_length
        for i in range(count):
            fields = _RECORD.unpack_from(body, i * template.record_length)
            (
                src_ip, dst_ip, src_asn, dst_asn, proto, src_port,
                dst_port, n_bytes, n_packets, start_secs, connections,
            ) = fields
            self.records.append(
                FlowRecord(
                    hour=(start_secs - STUDY_EPOCH_UNIX) // 3600,
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_asn=src_asn,
                    dst_asn=dst_asn,
                    proto=proto,
                    src_port=src_port,
                    dst_port=dst_port,
                    n_bytes=n_bytes,
                    n_packets=n_packets,
                    connections=connections,
                )
            )
        return count

    def table(self) -> FlowTable:
        """All records collected so far, as one flow table."""
        return FlowTable.from_records(self.records)


def decode_messages(messages: Iterable[bytes]) -> FlowTable:
    """Decode a message stream with a fresh collector."""
    collector = Collector()
    for message in messages:
        collector.feed(message)
    return collector.table()
