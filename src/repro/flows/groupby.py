"""Group-index aggregation engine.

Every analysis in the reproduction reduces to the same primitive:
*group rows of a flow table by a key column and sum a value column*.
At real vantage points the tables hold billions of rows (5.2 B flows at
the EDU network), and one ``run_all`` sweep issues dozens of such
aggregations against the same handful of cached tables — hourly byte
binning, per-AS byte totals, per-transport-key volumes, distinct-IP
counts.  Re-factorizing the key column for every call wastes the one
expensive step (a sort) that all of them share.

:class:`GroupIndex` captures one factorization so it can be reused:

* ``values`` — the sorted unique key values,
* ``codes`` — per-row group ids (``values[codes]`` reconstructs the
  key column),
* ``order`` — a stable permutation sorting rows by group,
* ``starts`` — the start offset of each group's segment in ``order``.

Given the index, any value column reduces with one gather and one
:func:`numpy.add.reduceat` — **integer exact**, unlike
``np.bincount(..., weights=...)`` which accumulates in float64 and
silently corrupts byte totals above 2**53.  Multi-column grouping
composes integer codes (:meth:`GroupIndex.compose`) without ever
materializing tuple keys.

:class:`~repro.flows.table.FlowTable` memoizes one index per key
column (and per derived key such as the service port), exploiting its
immutable-by-convention contract; see :meth:`FlowTable.group_index`.

Setting the ``REPRO_NO_GROUP_INDEX`` environment variable (to anything
non-empty) routes every table aggregation through the index-free
reference implementations in this module (:func:`group_sums`,
:func:`group_counts`) — slower, but bit-identical, which is what the
equivalence tests assert.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

import numpy as np

import repro.obs as obs

#: Environment variable disabling index memoization and routing
#: aggregations through the naive reference path.
DISABLE_ENV = "REPRO_NO_GROUP_INDEX"


def engine_enabled() -> bool:
    """Whether the memoized group-index engine is active."""
    return not os.environ.get(DISABLE_ENV)


@dataclass(frozen=True)
class GroupIndex:
    """A reusable factorization of one key array.

    Built with :meth:`from_values` in a single stable argsort (rather
    than ``np.unique`` followed by a second sort of the inverse), and
    safe to share across threads: all four arrays are read-only.
    """

    values: np.ndarray  #: sorted unique key values, shape (n_groups,)
    codes: np.ndarray  #: per-row group id into ``values``, int64
    order: np.ndarray  #: stable row permutation grouping equal keys
    starts: np.ndarray  #: segment start offsets in ``order``, (n_groups,)

    @classmethod
    def from_values(cls, keys: np.ndarray) -> "GroupIndex":
        """Factorize ``keys`` (any 1-D integer-like array)."""
        keys = np.asarray(keys)
        n = keys.shape[0]
        if n == 0:
            return cls(
                values=keys[:0].copy(),
                codes=np.empty(0, dtype=np.int64),
                order=np.empty(0, dtype=np.intp),
                starts=np.empty(0, dtype=np.intp),
            )
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
        starts = np.flatnonzero(new_group)
        values = sorted_keys[starts]
        sorted_codes = np.cumsum(new_group) - 1
        codes = np.empty(n, dtype=np.int64)
        codes[order] = sorted_codes
        for arr in (values, codes, order, starts):
            arr.flags.writeable = False
        return cls(values=values, codes=codes, order=order, starts=starts)

    # -- shape -------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.codes.shape[0]

    @property
    def n_groups(self) -> int:
        return self.values.shape[0]

    def __len__(self) -> int:
        return self.n_groups

    # -- reductions --------------------------------------------------------

    def sum(self, values: np.ndarray) -> np.ndarray:
        """Per-group sums of ``values``, exact in the values' dtype.

        Integer columns accumulate as integers (``np.add.reduceat``
        over contiguous segments), so int64 byte counters never round.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_rows:
            raise ValueError(
                f"values length {values.shape[0]} does not match "
                f"index over {self.n_rows} rows"
            )
        if self.n_groups == 0:
            return np.zeros(0, dtype=values.dtype)
        return np.add.reduceat(values[self.order], self.starts)

    def counts(self) -> np.ndarray:
        """Number of rows in each group."""
        return np.diff(self.starts, append=self.n_rows).astype(np.int64)

    # -- composition -------------------------------------------------------

    def compose(self, other: "GroupIndex") -> Tuple["GroupIndex", int]:
        """Factorize the pair key ``(self key, other key)`` per row.

        Combines the two code arrays into one integer key
        (``self.codes * other.n_groups + other.codes``) instead of
        materializing tuples; the returned index groups rows by the
        *pair* of keys.  Also returns the radix (``other.n_groups``),
        so callers can recover the component codes of each pair group::

            pair, radix = hour_index.compose(ip_index)
            hour_codes = pair.values // radix
            ip_codes = pair.values % radix

        Both input indexes must cover the same rows.
        """
        if other.n_rows != self.n_rows:
            raise ValueError("cannot compose indexes over different tables")
        radix = max(other.n_groups, 1)
        combined = self.codes * radix + other.codes
        return GroupIndex.from_values(combined), radix


# -- reference (index-free) implementations --------------------------------


def group_sums(
    keys: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique keys and exact per-group sums, without an index.

    The ``REPRO_NO_GROUP_INDEX`` fallback: one ``np.unique`` per call,
    accumulation via ``np.add.at`` in the values' own dtype (exact for
    int64, unlike float64 ``bincount`` weights).  Bit-identical to
    :meth:`GroupIndex.sum` over :attr:`GroupIndex.values`.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(uniq.shape[0], dtype=values.dtype)
    np.add.at(sums, inverse, values)
    return uniq, sums


def group_counts(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique keys and their occurrence counts (fallback path)."""
    uniq, counts = np.unique(np.asarray(keys), return_counts=True)
    return uniq, counts.astype(np.int64)


def record_build(key: str, n_rows: int) -> None:
    """Count one index construction in the metrics registry."""
    if obs.enabled():
        registry = obs.get_registry()
        registry.counter("groupby.index-builds").inc()
        registry.counter("groupby.index-rows").inc(n_rows)


def record_reuse() -> None:
    """Count one memoized-index reuse in the metrics registry."""
    obs.get_registry().counter("groupby.index-reuses").inc()


def record_fallback() -> None:
    """Count one naive-path aggregation in the metrics registry."""
    obs.get_registry().counter("groupby.fallbacks").inc()
