"""NetFlow v5 binary export and collection.

The ISP, the mobile operator, the IPX, and the EDU network export
NetFlow (§2); this module implements the actual Cisco NetFlow v5 wire
format so synthetic traces can round-trip through the same byte layout
a collector would ingest:

* 24-byte packet header (version, count, uptime, unix time, sequence,
  engine, sampling),
* 48-byte flow records (addresses, next hop, interfaces, packet/byte
  counters, first/last timestamps, ports, protocol, ToS, AS numbers,
  masks).

NetFlow v5 carries 16-bit AS numbers; 32-bit ASNs are exported as
``AS_TRANS`` (23456), mirroring real deployments (RFC 6793).  A packet
carries at most 30 records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.flows.record import FlowRecord
from repro.flows.table import FlowTable

#: NetFlow v5 version field.
VERSION = 5

#: Maximum records per export packet.
MAX_RECORDS_PER_PACKET = 30

#: Stand-in for ASNs that do not fit 16 bits (RFC 6793).
AS_TRANS = 23456

#: Unix timestamp of the study epoch (2020-01-01 00:00:00 UTC).
STUDY_EPOCH_UNIX = 1577836800

_HEADER = struct.Struct("!HHIIIIBBH")
_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")

assert _HEADER.size == 24
assert _RECORD.size == 48


@dataclass(frozen=True)
class PacketHeader:
    """Decoded NetFlow v5 packet header."""

    count: int
    sys_uptime_ms: int
    unix_secs: int
    flow_sequence: int
    engine_type: int = 0
    engine_id: int = 0
    sampling: int = 0  # 2-bit mode + 14-bit interval

    @property
    def sampling_interval(self) -> int:
        """The 14-bit packet-sampling interval (0 = unsampled)."""
        return self.sampling & 0x3FFF


def _export_asn(asn: int) -> int:
    return asn if 0 <= asn <= 0xFFFF else AS_TRANS


def encode_packets(
    table: FlowTable,
    engine_id: int = 0,
    first_sequence: int = 0,
    sampling_interval: int = 0,
) -> List[bytes]:
    """Encode a flow table as NetFlow v5 export packets.

    Flows are exported in table order, 30 per packet.  The packet's
    ``unix_secs`` is the hour of its first flow; per-record first/last
    uptimes place the flow inside that hour.
    """
    if not 0 <= sampling_interval <= 0x3FFF:
        raise ValueError("sampling interval must fit 14 bits")
    packets: List[bytes] = []
    sequence = first_sequence
    records = list(table)
    for offset in range(0, len(records), MAX_RECORDS_PER_PACKET):
        batch = records[offset : offset + MAX_RECORDS_PER_PACKET]
        unix_secs = STUDY_EPOCH_UNIX + batch[0].hour * 3600
        header = _HEADER.pack(
            VERSION,
            len(batch),
            3_600_000,  # sys uptime: one hour of router uptime
            unix_secs,
            0,  # residual nanoseconds
            sequence,
            0,  # engine type
            engine_id,
            (0x4000 if sampling_interval else 0) | sampling_interval,
        )
        body = bytearray()
        for i, record in enumerate(batch):
            start_ms = (record.hour - batch[0].hour) * 3_600_000 + i
            body += _RECORD.pack(
                record.src_ip,
                record.dst_ip,
                0,  # next hop (not modeled)
                1,  # input ifindex
                2,  # output ifindex
                min(record.n_packets, 0xFFFFFFFF),
                min(record.n_bytes, 0xFFFFFFFF),
                start_ms % (2**32),
                (start_ms + 1000) % (2**32),
                record.src_port,
                record.dst_port,
                0,  # pad
                0,  # TCP flags (not in summaries)
                record.proto,
                0,  # ToS
                _export_asn(record.src_asn),
                _export_asn(record.dst_asn),
                24,  # src mask
                24,  # dst mask
                0,  # pad
            )
        packets.append(bytes(header) + bytes(body))
        sequence = (sequence + len(batch)) % (2**32)
    return packets


def decode_packet(packet: bytes) -> Tuple[PacketHeader, List[FlowRecord]]:
    """Decode one NetFlow v5 packet into its header and records.

    Raises ``ValueError`` on version mismatch or truncated packets.
    """
    if len(packet) < _HEADER.size:
        raise ValueError("packet shorter than the NetFlow v5 header")
    (
        version, count, uptime, unix_secs, _nsecs, sequence,
        engine_type, engine_id, sampling,
    ) = _HEADER.unpack_from(packet)
    if version != VERSION:
        raise ValueError(f"not a NetFlow v5 packet (version {version})")
    expected = _HEADER.size + count * _RECORD.size
    if len(packet) < expected:
        raise ValueError(
            f"truncated packet: {len(packet)} bytes, expected {expected}"
        )
    header = PacketHeader(
        count=count,
        sys_uptime_ms=uptime,
        unix_secs=unix_secs,
        flow_sequence=sequence,
        engine_type=engine_type,
        engine_id=engine_id,
        sampling=sampling,
    )
    base_hour = (unix_secs - STUDY_EPOCH_UNIX) // 3600
    records = []
    for i in range(count):
        fields = _RECORD.unpack_from(packet, _HEADER.size + i * _RECORD.size)
        (
            src_ip, dst_ip, _nexthop, _in_if, _out_if, n_packets, n_bytes,
            first_ms, _last_ms, src_port, dst_port, _pad1, _flags, proto,
            _tos, src_as, dst_as, _smask, _dmask, _pad2,
        ) = fields
        records.append(
            FlowRecord(
                hour=int(base_hour + first_ms // 3_600_000),
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_asn=src_as,
                dst_asn=dst_as,
                proto=proto,
                src_port=src_port,
                dst_port=dst_port,
                n_bytes=n_bytes,
                n_packets=n_packets,
            )
        )
    return header, records


def decode_packets(packets: Iterable[bytes]) -> FlowTable:
    """Decode a packet stream back into one flow table."""
    records: List[FlowRecord] = []
    for packet in packets:
        _, batch = decode_packet(packet)
        records.extend(batch)
    return FlowTable.from_records(records)


def round_trip_lossless(table: FlowTable) -> bool:
    """Whether v5 export preserves ``table`` exactly.

    False when any flow needs AS_TRANS (32-bit ASN), overflows the
    32-bit counters, or carries a connection count other than one —
    the v5 format cannot represent those.
    """
    if len(table) == 0:
        return True
    asns_fit = (
        int(table.column("src_asn").max()) <= 0xFFFF
        and int(table.column("dst_asn").max()) <= 0xFFFF
    )
    counters_fit = (
        int(table.column("n_bytes").max()) <= 0xFFFFFFFF
        and int(table.column("n_packets").max()) <= 0xFFFFFFFF
    )
    plain_connections = bool(np.all(table.column("connections") == 1))
    return asns_fit and counters_fit and plain_connections
