"""Flow-record substrate: NetFlow/IPFIX-style flow summaries.

The vantage points in the paper export flow summaries (NetFlow at the
ISP, the mobile operator, the IPX and the EDU network; IPFIX at the
IXPs).  Both formats reduce to the same per-flow header summary — no
payload — which this subpackage models:

* :mod:`repro.flows.record` — the scalar :class:`FlowRecord` and
  protocol constants,
* :mod:`repro.flows.table` — the columnar :class:`FlowTable` used by
  every analysis,
* :mod:`repro.flows.io` — CSV and NPZ persistence,
* :mod:`repro.flows.store` — date-partitioned on-disk flow archives,
* :mod:`repro.flows.anonymize` — keyed IP-address hashing mirroring the
  paper's ethics requirements (§2.1),
* :mod:`repro.flows.netflow5` / :mod:`repro.flows.ipfix` — the binary
  export formats the vantage points actually speak,
* :mod:`repro.flows.sampling` — sampled-NetFlow emulation + inversion,
* :mod:`repro.flows.hll` — HyperLogLog sketches for distinct counting.
"""

from repro.flows.record import (
    PROTO_ESP,
    PROTO_GRE,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    FlowRecord,
    proto_name,
)
from repro.flows.table import FlowTable
from repro.flows.io import read_csv, read_npz, write_csv, write_npz
from repro.flows.anonymize import anonymize_table, hash_ip

__all__ = [
    "FlowRecord",
    "FlowTable",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_GRE",
    "PROTO_ESP",
    "PROTO_ICMP",
    "proto_name",
    "read_csv",
    "write_csv",
    "read_npz",
    "write_npz",
    "anonymize_table",
    "hash_ip",
]
