"""Keyed anonymization of flow addresses.

The paper's ethics section (§2.1) requires that IP addresses are hashed
before any analysis output leaves the vantage point.  We reproduce the
property that matters for the analyses: anonymization is a *keyed
deterministic permutation-like map* — the same address always maps to
the same pseudonym under the same key, so distinct-IP counts (Fig 8)
and per-host joins survive anonymization, while the original addresses
are not recoverable without the key.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

from repro.flows.table import FlowTable


def hash_ip(address: int, key: bytes) -> int:
    """Map a 32-bit address to a 32-bit pseudonym under ``key``.

    Uses BLAKE2b in keyed mode truncated to 32 bits.  Deterministic for
    a fixed key; infeasible to invert without it.
    """
    if not 0 <= address <= 0xFFFFFFFF:
        raise ValueError(f"address out of range: {address}")
    if not key:
        raise ValueError("anonymization key must be non-empty")
    digest = hashlib.blake2b(
        address.to_bytes(4, "big"), key=key, digest_size=4
    ).digest()
    return int.from_bytes(digest, "big")


def _hash_column(column: np.ndarray, key: bytes) -> np.ndarray:
    """Hash every address in a column, memoizing repeated addresses."""
    uniq, inverse = np.unique(column, return_inverse=True)
    mapping = np.fromiter(
        (hash_ip(int(addr), key) for addr in uniq),
        dtype=np.uint32,
        count=uniq.shape[0],
    )
    return mapping[inverse]


def anonymize_table(table: FlowTable, key: bytes) -> FlowTable:
    """Return a copy of ``table`` with both address columns hashed.

    All non-address columns are preserved unchanged; equal addresses map
    to equal pseudonyms, so grouping and distinct counting still work.
    """
    columns: Dict[str, np.ndarray] = {
        name: table.column(name).copy() for name in table.columns
    }
    columns["src_ip"] = _hash_column(columns["src_ip"], key)
    columns["dst_ip"] = _hash_column(columns["dst_ip"], key)
    return FlowTable(columns)
