"""Columnar flow table.

Every analysis in the reproduction consumes a :class:`FlowTable`: a
struct-of-arrays container for flow summaries, backed by numpy.  The
traces at the paper's vantage points contain billions of flows (5.2 B at
the EDU network alone), which rules out per-record Python objects for
anything but construction and debugging.

The table is immutable by convention: all operations return new tables
(views where possible) and never modify columns in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.flows import groupby
from repro.flows.groupby import GroupIndex
from repro.flows.record import (
    PROTO_ESP,
    PROTO_GRE,
    PROTO_ICMP,
    FlowRecord,
    proto_name,
)

#: Column names and dtypes, in canonical order.
COLUMNS: Mapping[str, np.dtype] = {
    "hour": np.dtype(np.int64),
    "src_ip": np.dtype(np.uint32),
    "dst_ip": np.dtype(np.uint32),
    "src_asn": np.dtype(np.int64),
    "dst_asn": np.dtype(np.int64),
    "proto": np.dtype(np.int16),
    "src_port": np.dtype(np.int32),
    "dst_port": np.dtype(np.int32),
    "n_bytes": np.dtype(np.int64),
    "n_packets": np.dtype(np.int64),
    "connections": np.dtype(np.int64),
}

#: Derived group-by keys the table knows how to compute from its
#: columns (in addition to the columns themselves).
DERIVED_KEYS = ("service_port", "transport")

#: Base columns each derived key is computed from.  The columnar store
#: uses this to expand a projected derived key into the physical
#: segments it must load.
DERIVED_BASE_COLUMNS: Mapping[str, Tuple[str, ...]] = {
    "service_port": ("proto", "src_port", "dst_port"),
    "transport": ("proto", "src_port", "dst_port"),
}

#: Radix packing (proto, service port) into one integer transport key.
_PORT_RADIX = 65536


def compute_service_port(
    proto: np.ndarray, src_port: np.ndarray, dst_port: np.ndarray
) -> np.ndarray:
    """Per-row service port from the raw port/protocol columns.

    The service sits on whichever side carries a non-ephemeral port
    (below 49152); when both or neither side is below the boundary the
    destination port is used, and port-less protocols report zero.
    Shared by :class:`FlowTable` and the columnar partition reader so
    derived keys are identical on every scan path.
    """
    src = np.asarray(src_port).astype(np.int64)
    dst = np.asarray(dst_port).astype(np.int64)
    ephemeral = 49152
    service = np.where((src < ephemeral) & (dst >= ephemeral), src, dst)
    portless = np.isin(proto, (PROTO_GRE, PROTO_ESP, PROTO_ICMP))
    return np.where(portless, 0, service)


def compute_transport(
    proto: np.ndarray, service_port: np.ndarray
) -> np.ndarray:
    """Combined ``proto * 65536 + service_port`` transport key array."""
    return np.asarray(proto).astype(np.int64) * _PORT_RADIX + service_port


def transport_label(key: int) -> str:
    """``PROTO/port`` label for one combined transport key.

    The inverse presentation of the ``transport`` derived key
    (``proto * 65536 + service_port``); port-less protocols render as
    the bare protocol name.  Shared by the table's label formatting and
    the query layer, which returns raw transport keys in result rows.
    """
    proto = int(key) // _PORT_RADIX
    port = int(key) % _PORT_RADIX
    if proto in (PROTO_GRE, PROTO_ESP, PROTO_ICMP):
        return proto_name(proto)
    return f"{proto_name(proto)}/{port}"


class FlowTable:
    """A columnar collection of flow summaries.

    Construct with :meth:`from_arrays` (generator / IO paths) or
    :meth:`from_records` (tests and examples).
    """

    __slots__ = ("_cols", "_derived", "_indexes")

    def __init__(self, columns: Dict[str, np.ndarray]):
        missing = set(COLUMNS) - set(columns)
        if missing:
            raise ValueError(f"missing flow columns: {sorted(missing)}")
        extra = set(columns) - set(COLUMNS)
        if extra:
            raise ValueError(f"unknown flow columns: {sorted(extra)}")
        length = None
        cols: Dict[str, np.ndarray] = {}
        for name, dtype in COLUMNS.items():
            col = np.asarray(columns[name], dtype=dtype)
            if col.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if length is None:
                length = col.shape[0]
            elif col.shape[0] != length:
                raise ValueError(
                    f"column {name!r} has length {col.shape[0]}, "
                    f"expected {length}"
                )
            cols[name] = col
        self._cols = cols
        # Lazily memoized derived key arrays and group indexes.  The
        # table is immutable by convention, so both caches are valid
        # for its whole lifetime; ``dict.setdefault`` keeps concurrent
        # builds safe (worst case the race wastes one computation).
        self._derived: Dict[str, np.ndarray] = {}
        self._indexes: Dict[str, GroupIndex] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls) -> "FlowTable":
        """A table with zero flows."""
        return cls({name: np.empty(0, dtype=dt) for name, dt in COLUMNS.items()})

    @classmethod
    def from_arrays(cls, **columns: np.ndarray) -> "FlowTable":
        """Build a table from keyword column arrays.

        ``connections`` defaults to one per flow if omitted.
        """
        if not columns:
            return cls.empty()
        if "connections" not in columns:
            any_col = next(iter(columns.values()))
            columns["connections"] = np.ones(len(any_col), dtype=np.int64)
        return cls(dict(columns))

    @classmethod
    def from_records(cls, records: Iterable[FlowRecord]) -> "FlowTable":
        """Build a table from an iterable of :class:`FlowRecord`."""
        records = list(records)
        columns = {
            name: np.fromiter(
                (getattr(r, name) for r in records),
                dtype=dtype,
                count=len(records),
            )
            for name, dtype in COLUMNS.items()
        }
        return cls(columns)

    @classmethod
    def concat(cls, tables: Sequence["FlowTable"]) -> "FlowTable":
        """Concatenate tables in order."""
        if not tables:
            return cls.empty()
        columns = {
            name: np.concatenate([t._cols[name] for t in tables])
            for name in COLUMNS
        }
        result = cls(columns)
        registry = obs.get_registry()
        registry.counter("table.concats").inc()
        registry.counter("table.concat-rows").inc(len(result))
        return result

    # -- basic container protocol -----------------------------------------

    def __len__(self) -> int:
        return self._cols["hour"].shape[0]

    def __iter__(self) -> Iterator[FlowRecord]:
        for i in range(len(self)):
            yield self.record(i)

    def __repr__(self) -> str:
        return f"FlowTable(n_flows={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowTable):
            return NotImplemented
        return all(
            np.array_equal(self._cols[name], other._cols[name])
            for name in COLUMNS
        )

    def record(self, index: int) -> FlowRecord:
        """Materialize row ``index`` as a :class:`FlowRecord`."""
        return FlowRecord(
            **{name: int(self._cols[name][index]) for name in COLUMNS}
        )

    def column(self, name: str) -> np.ndarray:
        """Read-only view of a column array."""
        col = self._cols[name].view()
        col.flags.writeable = False
        return col

    @property
    def columns(self) -> Dict[str, np.ndarray]:
        """All columns (read-only views), keyed by name."""
        return {name: self.column(name) for name in COLUMNS}

    @property
    def nbytes(self) -> int:
        """Resident memory of the column arrays (cache accounting)."""
        return sum(col.nbytes for col in self._cols.values())

    # -- selection ---------------------------------------------------------

    def filter(self, mask: np.ndarray) -> "FlowTable":
        """Select rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape[0] != len(self):
            raise ValueError("mask must be a boolean array of table length")
        result = FlowTable(
            {name: col[mask] for name, col in self._cols.items()}
        )
        registry = obs.get_registry()
        registry.counter("table.filters").inc()
        registry.counter("table.filter-rows-in").inc(len(self))
        registry.counter("table.filter-rows-out").inc(len(result))
        return result

    def where(self, **conditions: object) -> "FlowTable":
        """Select rows matching equality/membership conditions per column.

        Scalar values test equality; sequences/sets test membership::

            table.where(proto=17, dst_port=[443, 4500])
        """
        for name in conditions:
            if name not in self._cols:
                raise KeyError(f"unknown column: {name!r}")
        mask = np.ones(len(self), dtype=bool)
        for name, wanted in conditions.items():
            col = self._cols[name]
            if isinstance(wanted, (set, frozenset, list, tuple, np.ndarray)):
                values = np.asarray(sorted(wanted) if isinstance(
                    wanted, (set, frozenset)) else list(wanted))
                mask &= np.isin(col, values)
            else:
                mask &= col == wanted
            if not mask.any():
                # No row can match anymore; skip the remaining columns.
                break
        return self.filter(mask)

    def between_hours(self, start: int, stop: int) -> "FlowTable":
        """Select flows with ``start <= hour < stop``."""
        hours = self._cols["hour"]
        return self.filter((hours >= start) & (hours < stop))

    # -- group indexes -----------------------------------------------------

    def key_array(self, key: str) -> np.ndarray:
        """The integer key array for ``key``: a column or a derived key.

        Derived keys (``service_port``, ``transport``) are computed once
        and memoized.
        """
        if key in COLUMNS:
            return self._cols[key]
        arr = self._derived.get(key)
        if arr is not None:
            return arr
        if key == "service_port":
            arr = self._compute_service_ports()
        elif key == "transport":
            arr = compute_transport(
                self._cols["proto"], self.key_array("service_port")
            )
        else:
            raise KeyError(
                f"unknown group key {key!r}; columns are {sorted(COLUMNS)} "
                f"and derived keys are {DERIVED_KEYS}"
            )
        arr.flags.writeable = False
        return self._derived.setdefault(key, arr)

    def group_index(self, key: str) -> GroupIndex:
        """The memoized :class:`~repro.flows.groupby.GroupIndex` for ``key``.

        Computed on first use and reused by every aggregation over the
        same key — the engine behind :meth:`bytes_by`,
        :meth:`connections_by`, :meth:`bytes_by_transport_key`,
        :meth:`hourly_bytes`, and :meth:`unique_ips_per_hour`.
        """
        index = self._indexes.get(key)
        if index is not None:
            groupby.record_reuse()
            return index
        index = GroupIndex.from_values(self.key_array(key))
        groupby.record_build(key, len(self))
        return self._indexes.setdefault(key, index)

    def _pair_index(self, left: str, right: str) -> Tuple[GroupIndex, int]:
        """Memoized composed index over the ``(left, right)`` pair key."""
        name = f"{left}×{right}"
        index = self._indexes.get(name)
        radix = max(self.group_index(right).n_groups, 1)
        if index is not None:
            groupby.record_reuse()
            return index, radix
        index, radix = self.group_index(left).compose(self.group_index(right))
        groupby.record_build(name, len(self))
        return self._indexes.setdefault(name, index), radix

    def _grouped_sums(
        self, key: str, value_column: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted unique keys and exact per-group sums of a column."""
        values = self._cols[value_column]
        if groupby.engine_enabled():
            index = self.group_index(key)
            return index.values, index.sum(values)
        groupby.record_fallback()
        return groupby.group_sums(self.key_array(key), values)

    # -- aggregation -------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of the byte counters."""
        return int(self._cols["n_bytes"].sum())

    def total_connections(self) -> int:
        """Sum of the connection counters."""
        return int(self._cols["connections"].sum())

    def hourly_bytes(self, start: int, stop: int) -> np.ndarray:
        """Byte volume per hourly bin over ``[start, stop)``.

        Returns an array of length ``stop - start``; hours with no flows
        are zero.
        """
        return self._bin_by_hour("n_bytes", start, stop)

    def hourly_connections(self, start: int, stop: int) -> np.ndarray:
        """Connection count per hourly bin over ``[start, stop)``."""
        return self._bin_by_hour("connections", start, stop)

    def _bin_by_hour(self, value_col: str, start: int, stop: int) -> np.ndarray:
        """Exact per-hour sums of ``value_col`` over ``[start, stop)``.

        Groups once over the full hour column (the index is shared by
        every range) and scatters the in-range group sums into the
        requested window.  Integer-exact: the old float64
        ``np.bincount`` weights rounded totals above 2**53.
        """
        if stop <= start:
            raise ValueError("stop must be greater than start")
        hours, sums = self._grouped_sums("hour", value_col)
        out = np.zeros(stop - start, dtype=np.int64)
        in_range = (hours >= start) & (hours < stop)
        out[hours[in_range] - start] = sums[in_range]
        return out

    def bytes_by(self, key_column: str) -> Dict[int, int]:
        """Total bytes grouped by the values of ``key_column``."""
        uniq, sums = self._grouped_sums(key_column, "n_bytes")
        return {int(k): int(v) for k, v in zip(uniq, sums)}

    def connections_by(self, key_column: str) -> Dict[int, int]:
        """Total connections grouped by the values of ``key_column``."""
        uniq, sums = self._grouped_sums(key_column, "connections")
        return {int(k): int(v) for k, v in zip(uniq, sums)}

    def unique_ips(self, side: str = "src") -> int:
        """Number of distinct addresses on one side (``"src"``/``"dst"``)."""
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        return int(np.unique(self._cols[f"{side}_ip"]).shape[0])

    def unique_ips_per_hour(
        self, start: int, stop: int, side: str = "src"
    ) -> np.ndarray:
        """Distinct addresses per hourly bin over ``[start, stop)``."""
        if side not in ("src", "dst"):
            raise ValueError("side must be 'src' or 'dst'")
        if groupby.engine_enabled():
            # One distinct (hour, ip) pair per composed group; the pair
            # index is shared across ranges and with other aggregations
            # over the same columns.
            pair, radix = self._pair_index("hour", f"{side}_ip")
            hour_codes = (pair.values // radix).astype(np.intp)
            pair_hours = self.group_index("hour").values[hour_codes]
            in_range = (pair_hours >= start) & (pair_hours < stop)
            return np.bincount(
                pair_hours[in_range] - start, minlength=stop - start
            ).astype(np.int64)
        groupby.record_fallback()
        hours = self._cols["hour"]
        ips = self._cols[f"{side}_ip"]
        in_range = (hours >= start) & (hours < stop)
        rel_hours = hours[in_range] - start
        sel_ips = ips[in_range]
        # Count distinct (hour, ip) pairs per hour.
        if rel_hours.size == 0:
            return np.zeros(stop - start, dtype=np.int64)
        pairs = rel_hours.astype(np.uint64) << np.uint64(32)
        pairs |= sel_ips.astype(np.uint64)
        uniq = np.unique(pairs)
        uniq_hours = (uniq >> np.uint64(32)).astype(np.int64)
        return np.bincount(uniq_hours, minlength=stop - start).astype(np.int64)

    # -- transport keys ----------------------------------------------------

    def _compute_service_ports(self) -> np.ndarray:
        return compute_service_port(
            self._cols["proto"], self._cols["src_port"],
            self._cols["dst_port"],
        )

    def service_ports(self) -> np.ndarray:
        """Per-row service port: the well-known side of the flow.

        Flow exporters record ports on both sides; the service sits on
        whichever side carries a non-ephemeral port (below 49152).  When
        both or neither side is below the boundary, the destination port
        is used.  Port-less protocols report zero.  The array is
        computed once per table and returned read-only.
        """
        return self.key_array("service_port")

    @staticmethod
    def _transport_labels(transport_keys: np.ndarray) -> np.ndarray:
        """``PROTO/port`` labels for unique combined transport keys."""
        labels = np.empty(len(transport_keys), dtype=object)
        for j, key in enumerate(transport_keys):
            labels[j] = transport_label(key)
        return labels

    def transport_keys(self) -> np.ndarray:
        """Per-row ``PROTO/port`` labels (Fig 7 legend convention).

        Groups on the combined (proto, service port) integer key and
        formats one label per distinct key, so the Python-level string
        work is O(unique keys) rather than O(rows).
        """
        if groupby.engine_enabled():
            index = self.group_index("transport")
            return self._transport_labels(index.values)[index.codes]
        groupby.record_fallback()
        uniq, inverse = np.unique(
            self.key_array("transport"), return_inverse=True
        )
        return self._transport_labels(uniq)[inverse]

    def bytes_by_transport_key(self) -> Dict[str, int]:
        """Total bytes per ``PROTO/port`` label, efficiently.

        Avoids materializing per-row label strings by grouping on the
        combined (proto, service port) integer key first; the grouping
        itself reuses the memoized transport index.
        """
        uniq, sums = self._grouped_sums("transport", "n_bytes")
        labels = self._transport_labels(uniq)
        result: Dict[str, int] = {}
        for label, total in zip(labels, sums):
            result[label] = result.get(label, 0) + int(total)
        return result

    def top_transport_keys(self, n: int) -> List[Tuple[str, int]]:
        """The ``n`` highest-volume transport keys, descending by bytes."""
        by_key = self.bytes_by_transport_key()
        ranked = sorted(by_key.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    # -- sorting and persistence helpers ------------------------------------

    def sort_by_hour(self) -> "FlowTable":
        """Rows ordered by time bin (stable)."""
        order = np.argsort(self._cols["hour"], kind="stable")
        return FlowTable({name: col[order] for name, col in self._cols.items()})

    def head(self, n: int) -> "FlowTable":
        """The first ``n`` rows."""
        return FlowTable({name: col[:n] for name, col in self._cols.items()})

    def sample(self, n: int, seed: int = 0) -> "FlowTable":
        """A uniform random sample of ``n`` rows (without replacement).

        When ``n`` covers the whole table the result is a *copy* with
        its own column arrays — never an alias of ``self`` — so callers
        can rely on the sample being independent of the source table.
        """
        if n >= len(self):
            return FlowTable(
                {name: col.copy() for name, col in self._cols.items()}
            )
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=n, replace=False)
        idx.sort()
        return FlowTable({name: col[idx] for name, col in self._cols.items()})
