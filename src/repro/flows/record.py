"""Scalar flow record and IP protocol constants.

A :class:`FlowRecord` is one NetFlow/IPFIX-style flow summary: the
five-tuple (addresses, ports, protocol), the byte and packet counters,
the AS numbers of the two endpoints as seen by the exporting router,
and the hourly time bin the flow was accounted in.

Analyses operate on the columnar :class:`repro.flows.table.FlowTable`;
``FlowRecord`` exists for construction, for tests, and for readable
iteration over small tables.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

#: IANA protocol numbers used in the paper's analyses.
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_GRE = 47
PROTO_ESP = 50

_PROTO_NAMES = {
    PROTO_ICMP: "ICMP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
    PROTO_GRE: "GRE",
    PROTO_ESP: "ESP",
}

_PROTO_NUMBERS = {name: number for number, name in _PROTO_NAMES.items()}


def proto_name(proto: int) -> str:
    """Human-readable name for an IP protocol number."""
    return _PROTO_NAMES.get(proto, str(proto))


def proto_number(name: str) -> int:
    """IP protocol number for a protocol name (case-insensitive)."""
    try:
        return _PROTO_NUMBERS[name.upper()]
    except KeyError:
        raise ValueError(f"unknown protocol name: {name!r}") from None


def ip_to_int(address: str) -> int:
    """Parse a dotted-quad IPv4 address into its 32-bit integer form."""
    return int(ipaddress.IPv4Address(address))


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    return str(ipaddress.IPv4Address(value))


@dataclass(frozen=True)
class FlowRecord:
    """One flow summary as exported by a border router.

    Attributes:
        hour: hourly time bin, hours since 2020-01-01 00:00
            (see :func:`repro.timebase.hour_index`).
        src_ip: source IPv4 address as a 32-bit integer.
        dst_ip: destination IPv4 address as a 32-bit integer.
        src_asn: origin AS of the source address.
        dst_asn: origin AS of the destination address.
        proto: IP protocol number (6 = TCP, 17 = UDP, 47 = GRE, ...).
        src_port: transport source port (0 for port-less protocols).
        dst_port: transport destination port (0 for port-less protocols).
        n_bytes: bytes accounted to the flow in this bin.
        n_packets: packets accounted to the flow in this bin.
        connections: new connections this flow summary represents
            (NetFlow aggregates; used by the EDU connection analysis).
    """

    hour: int
    src_ip: int
    dst_ip: int
    src_asn: int
    dst_asn: int
    proto: int
    src_port: int
    dst_port: int
    n_bytes: int
    n_packets: int
    connections: int = 1

    def __post_init__(self) -> None:
        if self.hour < 0:
            raise ValueError(f"hour must be non-negative, got {self.hour}")
        for field_name in ("src_port", "dst_port"):
            port = getattr(self, field_name)
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{field_name} out of range: {port}")
        for field_name in ("src_ip", "dst_ip"):
            addr = getattr(self, field_name)
            if not 0 <= addr <= 0xFFFFFFFF:
                raise ValueError(f"{field_name} out of range: {addr}")
        if self.n_bytes < 0 or self.n_packets < 0:
            raise ValueError("byte and packet counters must be non-negative")
        if self.connections < 0:
            raise ValueError("connection counter must be non-negative")

    @property
    def src_ip_str(self) -> str:
        """Source address in dotted-quad form."""
        return int_to_ip(self.src_ip)

    @property
    def dst_ip_str(self) -> str:
        """Destination address in dotted-quad form."""
        return int_to_ip(self.dst_ip)

    @property
    def proto_name(self) -> str:
        """Protocol name (``"TCP"``, ``"UDP"``, ...)."""
        return proto_name(self.proto)

    def service_port(self) -> int:
        """The well-known (server-side) port of the flow.

        The service sits on whichever side carries a non-ephemeral port
        (below 49152); ties fall back to the destination port.
        Port-less protocols report zero.
        """
        if self.proto in (PROTO_GRE, PROTO_ESP, PROTO_ICMP):
            return 0
        if self.src_port < 49152 <= self.dst_port:
            return self.src_port
        return self.dst_port

    def transport_key(self) -> str:
        """The ``PROTO/port`` label used throughout the paper.

        Port-less protocols (GRE, ESP) render as their bare protocol
        name, matching Fig 7's legend.
        """
        if self.proto in (PROTO_GRE, PROTO_ESP, PROTO_ICMP):
            return self.proto_name
        return f"{self.proto_name}/{self.service_port()}"

    def reversed(self) -> "FlowRecord":
        """The same flow seen in the opposite direction."""
        return FlowRecord(
            hour=self.hour,
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_asn=self.dst_asn,
            dst_asn=self.src_asn,
            proto=self.proto,
            src_port=self.dst_port,
            dst_port=self.src_port,
            n_bytes=self.n_bytes,
            n_packets=self.n_packets,
            connections=self.connections,
        )
