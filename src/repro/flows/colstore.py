"""Columnar partition format v2: per-column segments + zone-map sidecar.

A v1 :class:`~repro.flows.store.FlowStore` partition is one compressed
``.npz`` archive — every read decompresses and checksums *all* columns
even when the query touches two of them.  Format v2 turns each day into
a directory of raw per-column ``.npy`` segments plus a JSON sidecar::

    store/
      manifest.json            entries carry {"format": 2, "sha256": ...}
      2020-03-25/
        sidecar.json           per-column checksums + zone map
        hour.npy               one raw segment per column
        src_ip.npy
        ...

The sidecar holds, per column, the segment's SHA-256, dtype, byte size,
and min/max (the **zone map**), plus the partition row count and
pre-aggregated per-hour ``bytes``/``flows`` totals.  That makes three
optimizations possible without touching row data:

* **Projection pushdown** — :meth:`ColumnarPartition.load` maps only
  the columns a query references (``np.load(..., mmap_mode="r")``), and
  verifies checksums only for those segments;
* **Data skipping** — the planner prunes partitions whose zone map
  (actual hour range, predicate column bounds) cannot match;
* **Pre-aggregate answers** — unfiltered ``bytes``/``flows`` totals
  (whole-day or per-hour) come straight from the sidecar.

Checksum verification reads a segment once; a process-global
verified-cache keyed by ``(path, mtime_ns, size)`` makes repeated warm
queries skip re-hashing entirely.

Setting the ``REPRO_NO_COLSTORE`` environment variable (to anything
non-empty) forces the v1 full-load path everywhere: new partitions are
written as ``.npz`` archives and v2 partitions are read fully into
memory with every checksum verified.  Results are bit-identical either
way — the variable only trades I/O strategy.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.flows import groupby
from repro.flows.groupby import GroupIndex
from repro.flows.io import file_sha256, read_npy_segment, write_npy_segment
from repro.flows.table import (
    COLUMNS,
    DERIVED_BASE_COLUMNS,
    DERIVED_KEYS,
    FlowTable,
    compute_service_port,
    compute_transport,
)

#: Partition format versions understood by the store.
FORMAT_V1 = 1
FORMAT_V2 = 2

#: Sidecar file name inside a v2 partition directory.
SIDECAR = "sidecar.json"

#: Environment variable forcing the v1 full-load path.
DISABLE_ENV = "REPRO_NO_COLSTORE"

#: Hour bins per day partition.
_HOURS = 24


class FlowStoreError(Exception):
    """A partition that exists in the manifest cannot be served.

    Raised for missing partition files or column segments, checksum
    mismatches, corrupt sidecars, and archives that fail to parse — all
    the ways a store directory can rot underneath its manifest.
    (Re-exported as :class:`repro.flows.store.FlowStoreError`, its
    historical home.)
    """


def enabled() -> bool:
    """Whether the columnar read/write path is active.

    ``REPRO_NO_COLSTORE`` (any non-empty value) disables it, forcing
    v1 ``.npz`` writes and full in-memory loads of v2 partitions.
    """
    return not os.environ.get(DISABLE_ENV)


def mode_token() -> str:
    """Short tag naming the active partition I/O mode.

    Folded into the query service's cache key so results cached under
    one mode (with its ``bytes_read``/``columns_loaded`` diagnostics)
    are not replayed under the other.
    """
    return "colstore" if enabled() else "full-load"


def required_base_columns(names: Iterable[str]) -> Tuple[str, ...]:
    """Expand column/derived-key names into physical columns, sorted.

    Derived keys (``service_port``, ``transport``) expand into the base
    columns they are computed from; unknown names raise ``KeyError``.
    """
    base = set()
    for name in names:
        if name in COLUMNS:
            base.add(name)
        elif name in DERIVED_BASE_COLUMNS:
            base.update(DERIVED_BASE_COLUMNS[name])
        else:
            raise KeyError(
                f"unknown column or derived key {name!r}; columns are "
                f"{sorted(COLUMNS)} and derived keys are {DERIVED_KEYS}"
            )
    return tuple(sorted(base))


# -- checksum verification ----------------------------------------------------

#: (path, mtime_ns, size) -> verified hex digest.
_VERIFIED: Dict[Tuple[str, int, int], str] = {}
_VERIFIED_LOCK = threading.Lock()
_VERIFIED_CAP = 8192


def _verify_file(path: Path, expected: str, what: str) -> None:
    """Check ``path`` against ``expected``, memoizing by stat identity.

    A hit in the verified-cache (same path, mtime, and size as a
    previously hashed file) skips re-reading the bytes — the warm-query
    fast path.  Any rewrite bumps the mtime and invalidates the entry.
    """
    try:
        stat = path.stat()
    except OSError as exc:
        raise FlowStoreError(f"{what} is missing: {path}") from exc
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    with _VERIFIED_LOCK:
        cached = _VERIFIED.get(key)
    if cached is not None:
        if cached != expected:
            raise FlowStoreError(
                f"{what} is corrupt: checksum {cached[:12]}… does not "
                f"match the expected {expected[:12]}…"
            )
        obs.counter("colstore.verify-cached").inc()
        return
    actual = file_sha256(path)
    if actual != expected:
        raise FlowStoreError(
            f"{what} is corrupt: checksum {actual[:12]}… does not "
            f"match the expected {expected[:12]}…"
        )
    obs.counter("colstore.verify-hashed").inc()
    with _VERIFIED_LOCK:
        if len(_VERIFIED) >= _VERIFIED_CAP:
            _VERIFIED.clear()
        _VERIFIED[key] = actual


def reset_verified_cache() -> None:
    """Drop every verified-checksum entry (tests and corruption drills)."""
    with _VERIFIED_LOCK:
        _VERIFIED.clear()


# -- writes -------------------------------------------------------------------


def _hour_preaggregates(
    flows: FlowTable, day_start: int
) -> Tuple[List[int], List[int]]:
    """Exact per-hour ``bytes``/``flows`` totals for one day partition."""
    byte_bins = np.zeros(_HOURS, dtype=np.int64)
    flow_bins = np.zeros(_HOURS, dtype=np.int64)
    if len(flows):
        index = flows.group_index("hour")
        rel = (index.values - day_start).astype(np.intp)
        byte_bins[rel] = index.sum(flows.column("n_bytes"))
        flow_bins[rel] = index.counts()
    return [int(v) for v in byte_bins], [int(v) for v in flow_bins]


def write_partition(
    flows: FlowTable, final_dir: Path, day_start: int
) -> Tuple[dict, str]:
    """Write one day's flows as a v2 partition directory, atomically.

    Builds the whole partition (segments + sidecar) under a temporary
    sibling directory and swaps it into place, so readers never observe
    a half-written day.  Returns ``(sidecar payload, sidecar sha256)``;
    the caller records the sidecar hash in the store manifest, chaining
    manifest → sidecar → column segments.
    """
    final_dir = Path(final_dir)
    temp = final_dir.with_name(final_dir.name + ".tmp")
    if temp.exists():
        shutil.rmtree(temp)
    temp.mkdir(parents=True)
    columns_meta: Dict[str, Dict[str, object]] = {}
    for name in COLUMNS:
        column = flows.column(name)
        sha = write_npy_segment(column, temp / f"{name}.npy")
        columns_meta[name] = {
            "sha256": sha,
            "dtype": column.dtype.str,
            "nbytes": int(column.nbytes),
            "min": int(column.min()) if len(column) else None,
            "max": int(column.max()) if len(column) else None,
        }
    byte_bins, flow_bins = _hour_preaggregates(flows, day_start)
    sidecar = {
        "format": FORMAT_V2,
        "rows": len(flows),
        "day_start": day_start,
        "columns": columns_meta,
        "hours": {"bytes": byte_bins, "flows": flow_bins},
    }
    sidecar_path = temp / SIDECAR
    with sidecar_path.open("w") as handle:
        json.dump(sidecar, handle, indent=2, sort_keys=True)
    sidecar_sha = file_sha256(sidecar_path)
    trash = final_dir.with_name(final_dir.name + ".old")
    if trash.exists():
        shutil.rmtree(trash)
    if final_dir.exists():
        os.replace(final_dir, trash)
    os.replace(temp, final_dir)
    if trash.exists():
        shutil.rmtree(trash)
    obs.counter("colstore.partitions-written").inc()
    return sidecar, sidecar_sha


# -- reads --------------------------------------------------------------------


def read_sidecar(partition_dir: Path, expected_sha: Optional[str],
                 what: str) -> dict:
    """Load and validate one partition sidecar.

    ``expected_sha`` (from the store manifest) is verified first, so a
    tampered sidecar cannot vouch for tampered segments.  Structural
    problems — unparseable JSON, missing fields, wrong column set —
    raise :class:`FlowStoreError`.
    """
    path = Path(partition_dir) / SIDECAR
    if expected_sha is not None:
        _verify_file(path, expected_sha, f"sidecar for {what}")
    elif not path.exists():
        raise FlowStoreError(f"sidecar for {what} is missing: {path}")
    try:
        with path.open() as handle:
            sidecar = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise FlowStoreError(
            f"sidecar for {what} cannot be parsed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(sidecar, dict) or sidecar.get("format") != FORMAT_V2:
        raise FlowStoreError(
            f"sidecar for {what} has unsupported format "
            f"{sidecar.get('format') if isinstance(sidecar, dict) else sidecar!r}"
        )
    columns = sidecar.get("columns")
    if not isinstance(columns, dict) or set(columns) != set(COLUMNS):
        present = sorted(columns) if isinstance(columns, dict) else columns
        raise FlowStoreError(
            f"sidecar for {what} does not describe the flow schema "
            f"(columns: {present})"
        )
    return sidecar


class ColumnBundle:
    """The projected columns of one partition, duck-typing the scan API.

    Provides the subset of :class:`~repro.flows.table.FlowTable` the
    query engine's partition scan uses — ``len()``, :meth:`column`,
    :meth:`key_array`, :meth:`group_index`, :meth:`filter` — over a
    dict of (possibly memory-mapped) column arrays.  Derived keys are
    computed with the same helpers as ``FlowTable``, so every scan path
    produces identical values.

    A bundle produced by :meth:`ColumnarPartition.load` pickles
    *cheaply*: its reduce payload is the partition path, sidecar
    (manifest entry), and projected column names — never the mapped
    bytes — and unpickling re-maps the segments in the target process
    through the usual checksum verification.  A derived bundle (e.g.
    from :meth:`filter`) has no backing segments and falls back to
    shipping its materialized arrays by value.
    """

    __slots__ = ("_cols", "_rows", "_derived", "_indexes", "_source")

    def __init__(self, columns: Dict[str, np.ndarray], rows: int):
        self._cols = columns
        self._rows = rows
        self._derived: Dict[str, np.ndarray] = {}
        self._indexes: Dict[str, GroupIndex] = {}
        #: (day, partition dir, sidecar, column names, mmap flag) when
        #: the bundle maps on-disk segments; None once derived.
        self._source: Optional[tuple] = None

    def __reduce__(self):
        if self._source is not None:
            return (_rebuild_bundle, self._source)
        arrays = {
            name: np.ascontiguousarray(col)
            for name, col in self._cols.items()
        }
        return (ColumnBundle, (arrays, self._rows))

    def __len__(self) -> int:
        return self._rows

    @property
    def loaded_columns(self) -> Tuple[str, ...]:
        """The physical columns present in the bundle, sorted."""
        return tuple(sorted(self._cols))

    def column(self, name: str) -> np.ndarray:
        col = self._cols.get(name)
        if col is None:
            raise KeyError(
                f"column {name!r} was not projected into this scan "
                f"(loaded: {self.loaded_columns})"
            )
        return col

    def key_array(self, key: str) -> np.ndarray:
        if key in self._cols:
            return self._cols[key]
        arr = self._derived.get(key)
        if arr is not None:
            return arr
        if key == "service_port":
            arr = compute_service_port(
                self.column("proto"), self.column("src_port"),
                self.column("dst_port"),
            )
        elif key == "transport":
            arr = compute_transport(
                self.column("proto"), self.key_array("service_port")
            )
        else:
            raise KeyError(
                f"unknown group key {key!r}; columns are "
                f"{sorted(COLUMNS)} and derived keys are {DERIVED_KEYS}"
            )
        return self._derived.setdefault(key, arr)

    def group_index(self, key: str) -> GroupIndex:
        index = self._indexes.get(key)
        if index is not None:
            groupby.record_reuse()
            return index
        index = GroupIndex.from_values(self.key_array(key))
        groupby.record_build(key, self._rows)
        return self._indexes.setdefault(key, index)

    def filter(self, mask: np.ndarray) -> "ColumnBundle":
        """Rows where ``mask`` is true, materialized off the mmap."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape[0] != self._rows:
            raise ValueError(
                "mask must be a boolean array of partition length"
            )
        selected = {name: col[mask] for name, col in self._cols.items()}
        if selected:
            rows = len(next(iter(selected.values())))
        else:
            rows = int(np.count_nonzero(mask))
        return ColumnBundle(selected, rows)


def _rebuild_bundle(
    day: str, partition_dir: str, sidecar: dict,
    columns: Tuple[str, ...], mmap: bool,
) -> "ColumnBundle":
    """Unpickle hook: re-map a bundle's segments in this process.

    Goes through :meth:`ColumnarPartition.load`, so the rebuilt bundle
    is checksum-verified against the shipped sidecar (memoized by the
    per-process verified-cache) exactly like a locally opened one.
    """
    partition = ColumnarPartition(day, Path(partition_dir), sidecar)
    bundle, _ = partition.load(columns, mmap=mmap)
    return bundle


class ColumnarPartition:
    """One v2 partition directory opened for reading.

    Pickles by ``(day, path, sidecar)`` — plain data, no open mmaps —
    so partition handles are cheap to ship to scan workers.
    """

    __slots__ = ("day", "_dir", "_sidecar")

    def __init__(self, day: str, partition_dir: Path, sidecar: dict):
        self.day = day
        self._dir = Path(partition_dir)
        self._sidecar = sidecar

    def __reduce__(self):
        return (ColumnarPartition, (self.day, str(self._dir), self._sidecar))

    @property
    def rows(self) -> int:
        return int(self._sidecar["rows"])

    @property
    def sidecar(self) -> dict:
        return self._sidecar

    def zone(self, column: str) -> Optional[Tuple[int, int]]:
        """The zone map's (min, max) for one column; None when empty."""
        meta = self._sidecar["columns"].get(column)
        if meta is None or meta.get("min") is None:
            return None
        return int(meta["min"]), int(meta["max"])

    def column_nbytes(self, columns: Iterable[str]) -> int:
        """Total segment bytes behind ``columns`` (estimation, I/O)."""
        return sum(
            int(self._sidecar["columns"][name]["nbytes"])
            for name in columns
        )

    def hour_preaggregates(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """``(day_start, per-hour bytes, per-hour flows)`` pre-aggregates."""
        hours = self._sidecar["hours"]
        return (
            int(self._sidecar["day_start"]),
            np.asarray(hours["bytes"], dtype=np.int64),
            np.asarray(hours["flows"], dtype=np.int64),
        )

    def load(
        self, columns: Sequence[str], mmap: bool = True
    ) -> Tuple[ColumnBundle, int]:
        """Map the requested physical columns, verifying their checksums.

        Returns ``(bundle, bytes_read)`` where ``bytes_read`` counts the
        segment bytes behind the loaded columns.  Missing or corrupt
        segments raise :class:`FlowStoreError` naming the column.
        """
        arrays: Dict[str, np.ndarray] = {}
        bytes_read = 0
        for name in columns:
            meta = self._sidecar["columns"][name]
            path = self._dir / f"{name}.npy"
            _verify_file(
                path, str(meta["sha256"]),
                f"column {name!r} of partition {self.day}",
            )
            try:
                arrays[name] = read_npy_segment(
                    path, np.dtype(str(meta["dtype"])), self.rows,
                    mmap=mmap,
                )
            except (OSError, ValueError) as exc:
                raise FlowStoreError(
                    f"column {name!r} of partition {self.day} cannot "
                    f"be read: {type(exc).__name__}: {exc}"
                ) from exc
            bytes_read += int(meta["nbytes"])
        obs.counter("colstore.loads").inc()
        obs.counter("colstore.columns-loaded").inc(len(arrays))
        obs.counter("colstore.bytes-mapped").inc(bytes_read)
        bundle = ColumnBundle(arrays, self.rows)
        bundle._source = (
            self.day, str(self._dir), self._sidecar, tuple(columns), mmap
        )
        return bundle, bytes_read

    def table(self, mmap: bool = False) -> FlowTable:
        """The whole partition as a :class:`FlowTable` (all columns).

        ``mmap=False`` (the default for the v1-compatible full-load
        path) materializes every column in memory.
        """
        bundle, _ = self.load(tuple(COLUMNS), mmap=mmap)
        return FlowTable({name: bundle.column(name) for name in COLUMNS})
