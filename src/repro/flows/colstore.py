"""Columnar partition format v2: per-column segments + zone-map sidecar.

A v1 :class:`~repro.flows.store.FlowStore` partition is one compressed
``.npz`` archive — every read decompresses and checksums *all* columns
even when the query touches two of them.  Format v2 turns each day into
a directory of raw per-column ``.npy`` segments plus a JSON sidecar::

    store/
      manifest.json            entries carry {"format": 2, "sha256": ...}
      2020-03-25/
        sidecar.json           per-column checksums + zone map
        hour.npy               one raw segment per column
        src_ip.npy
        ...

The sidecar holds, per column, the segment's SHA-256, dtype, byte size,
and min/max (the **zone map**), plus the partition row count and
pre-aggregated per-hour ``bytes``/``flows`` totals.  That makes three
optimizations possible without touching row data:

* **Projection pushdown** — :meth:`ColumnarPartition.load` maps only
  the columns a query references (``np.load(..., mmap_mode="r")``), and
  verifies checksums only for those segments;
* **Data skipping** — the planner prunes partitions whose zone map
  (actual hour range, predicate column bounds) cannot match;
* **Pre-aggregate answers** — unfiltered ``bytes``/``flows`` totals
  (whole-day or per-hour) come straight from the sidecar.

Checksum verification reads a segment once; a process-global
verified-cache keyed by ``(path, mtime_ns, size)`` makes repeated warm
queries skip re-hashing entirely.

Setting the ``REPRO_NO_COLSTORE`` environment variable (to anything
non-empty) forces the v1 full-load path everywhere: new partitions are
written as ``.npz`` archives and v2 partitions are read fully into
memory with every checksum verified.  Results are bit-identical either
way — the variable only trades I/O strategy.

Format **v3** keeps the sidecar discipline but encodes each column at
seal time (see :mod:`repro.flows.encodings`) and packs every encoded
*part* into one 64-byte-aligned ``segments.bin`` data file::

    store/
      manifest.json            entries carry {"format": 3, "sha256": ...}
      2020-03-25/
        sidecar.json           encodings, per-part sha256, zones, indexes
        segments.bin           all encoded column parts, one mmap

Low-cardinality columns are dictionary-encoded (sorted uniques + small
codes) and, at very low cardinality, also get a serialized **bitmap
index** (one packed bit-row per distinct value).  Near-sorted columns
(``hour``) are delta + bit-packed.  The scan path can then evaluate
equality/membership predicates on dictionary codes or by OR/AND-ing
bitmap rows *before* materializing any row data, gathering only the
surviving rows of only the referenced columns
(:meth:`ColumnarPartition.load_filtered`).  The sidecar additionally
records conservative zones for the derived keys (``service_port``,
``transport``) so derived-key predicates can prune partitions.

``REPRO_NO_COLSTORE_V3`` (any non-empty value) is the v3 escape hatch:
new partitions are written as v2 and existing v3 partitions are read
through the plain decode-everything scan path (no bitmap short-cuts).
Results are bit-identical either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.flows import encodings, groupby
from repro.flows.groupby import GroupIndex
from repro.flows.io import file_sha256, read_npy_segment, write_npy_segment
from repro.flows.table import (
    COLUMNS,
    DERIVED_BASE_COLUMNS,
    DERIVED_KEYS,
    FlowTable,
    compute_service_port,
    compute_transport,
)

#: Partition format versions understood by the store.
FORMAT_V1 = 1
FORMAT_V2 = 2
FORMAT_V3 = 3

#: Sidecar file name inside a v2/v3 partition directory.
SIDECAR = "sidecar.json"

#: Single data file holding every encoded part of a v3 partition.
DATA_FILE = "segments.bin"

#: Environment variable forcing the v1 full-load path.
DISABLE_ENV = "REPRO_NO_COLSTORE"

#: Environment variable pinning writes to v2 and disabling the bitmap
#: scan path (v3 partitions are still readable, fully decoded).
DISABLE_V3_ENV = "REPRO_NO_COLSTORE_V3"

#: Hour bins per day partition.
_HOURS = 24

#: Part offsets inside ``segments.bin`` are aligned to this boundary.
_PART_ALIGN = 64


class FlowStoreError(Exception):
    """A partition that exists in the manifest cannot be served.

    Raised for missing partition files or column segments, checksum
    mismatches, corrupt sidecars, and archives that fail to parse — all
    the ways a store directory can rot underneath its manifest.
    (Re-exported as :class:`repro.flows.store.FlowStoreError`, its
    historical home.)
    """


def enabled() -> bool:
    """Whether the columnar read/write path is active.

    ``REPRO_NO_COLSTORE`` (any non-empty value) disables it, forcing
    v1 ``.npz`` writes and full in-memory loads of v2 partitions.
    """
    return not os.environ.get(DISABLE_ENV)


def v3_enabled() -> bool:
    """Whether the v3 encoded format is active for writes and scans.

    ``REPRO_NO_COLSTORE_V3`` (any non-empty value) pins new writes to
    v2 and routes v3 reads through the plain decode-everything path —
    bit-identical results, no bitmap short-cuts.  Implies nothing when
    the colstore as a whole is disabled.
    """
    return enabled() and not os.environ.get(DISABLE_V3_ENV)


def mode_token() -> str:
    """Short tag naming the active partition I/O mode.

    Folded into the query service's cache key so results cached under
    one mode (with its ``bytes_read``/``columns_loaded`` diagnostics)
    are not replayed under another.
    """
    if not enabled():
        return "full-load"
    return "colstore-v3" if v3_enabled() else "colstore"


def required_base_columns(names: Iterable[str]) -> Tuple[str, ...]:
    """Expand column/derived-key names into physical columns, sorted.

    Derived keys (``service_port``, ``transport``) expand into the base
    columns they are computed from; unknown names raise ``KeyError``.
    """
    base = set()
    for name in names:
        if name in COLUMNS:
            base.add(name)
        elif name in DERIVED_BASE_COLUMNS:
            base.update(DERIVED_BASE_COLUMNS[name])
        else:
            raise KeyError(
                f"unknown column or derived key {name!r}; columns are "
                f"{sorted(COLUMNS)} and derived keys are {DERIVED_KEYS}"
            )
    return tuple(sorted(base))


# -- checksum verification ----------------------------------------------------

#: (path, mtime_ns, size[, part label]) -> verified hex digest.
_VERIFIED: Dict[tuple, str] = {}
_VERIFIED_LOCK = threading.Lock()
_VERIFIED_CAP = 8192


def _verify_file(path: Path, expected: str, what: str) -> None:
    """Check ``path`` against ``expected``, memoizing by stat identity.

    A hit in the verified-cache (same path, mtime, and size as a
    previously hashed file) skips re-reading the bytes — the warm-query
    fast path.  Any rewrite bumps the mtime and invalidates the entry.
    """
    try:
        stat = path.stat()
    except OSError as exc:
        raise FlowStoreError(f"{what} is missing: {path}") from exc
    key = (str(path), stat.st_mtime_ns, stat.st_size)
    with _VERIFIED_LOCK:
        cached = _VERIFIED.get(key)
    if cached is not None:
        if cached != expected:
            raise FlowStoreError(
                f"{what} is corrupt: checksum {cached[:12]}… does not "
                f"match the expected {expected[:12]}…"
            )
        obs.counter("colstore.verify-cached").inc()
        return
    actual = file_sha256(path)
    if actual != expected:
        raise FlowStoreError(
            f"{what} is corrupt: checksum {actual[:12]}… does not "
            f"match the expected {expected[:12]}…"
        )
    obs.counter("colstore.verify-hashed").inc()
    with _VERIFIED_LOCK:
        if len(_VERIFIED) >= _VERIFIED_CAP:
            _VERIFIED.clear()
        _VERIFIED[key] = actual


def _verify_slice(
    path: Path, data: np.ndarray, expected: str, what: str, label: str
) -> None:
    """Check one part's bytes inside a shared data file.

    Same memoization contract as :func:`_verify_file`, but the cache
    key carries the part ``label`` so each part of ``segments.bin`` is
    verified (and cached) independently; rewriting the file bumps the
    mtime and invalidates every part at once.
    """
    try:
        stat = path.stat()
    except OSError as exc:
        raise FlowStoreError(f"{what} is missing: {path}") from exc
    key = (str(path), stat.st_mtime_ns, stat.st_size, label)
    with _VERIFIED_LOCK:
        cached = _VERIFIED.get(key)
    if cached is not None:
        if cached != expected:
            raise FlowStoreError(
                f"{what} is corrupt: checksum {cached[:12]}… does not "
                f"match the expected {expected[:12]}…"
            )
        obs.counter("colstore.verify-cached").inc()
        return
    actual = hashlib.sha256(np.ascontiguousarray(data)).hexdigest()
    if actual != expected:
        raise FlowStoreError(
            f"{what} is corrupt: checksum {actual[:12]}… does not "
            f"match the expected {expected[:12]}…"
        )
    obs.counter("colstore.verify-hashed").inc()
    with _VERIFIED_LOCK:
        if len(_VERIFIED) >= _VERIFIED_CAP:
            _VERIFIED.clear()
        _VERIFIED[key] = actual


def reset_verified_cache() -> None:
    """Drop every verified-checksum entry (tests and corruption drills)."""
    with _VERIFIED_LOCK:
        _VERIFIED.clear()


# -- writes -------------------------------------------------------------------


def _hour_preaggregates(
    flows: FlowTable, day_start: int
) -> Tuple[List[int], List[int]]:
    """Exact per-hour ``bytes``/``flows`` totals for one day partition."""
    byte_bins = np.zeros(_HOURS, dtype=np.int64)
    flow_bins = np.zeros(_HOURS, dtype=np.int64)
    if len(flows):
        index = flows.group_index("hour")
        rel = (index.values - day_start).astype(np.intp)
        byte_bins[rel] = index.sum(flows.column("n_bytes"))
        flow_bins[rel] = index.counts()
    return [int(v) for v in byte_bins], [int(v) for v in flow_bins]


def _derived_zones(flows: FlowTable) -> Dict[str, Optional[List[int]]]:
    """Exact (min, max) of each derived key, computed at seal time.

    Stored in the sidecar so the planner can zone-prune predicates on
    ``service_port``/``transport`` without materializing base columns.
    """
    zones: Dict[str, Optional[List[int]]] = {}
    for key in DERIVED_KEYS:
        if not len(flows):
            zones[key] = None
            continue
        values = flows.key_array(key)
        zones[key] = [int(values.min()), int(values.max())]
    return zones


def _seal_dir(temp: Path, final_dir: Path) -> None:
    """Swap a fully-built partition directory into place atomically."""
    trash = final_dir.with_name(final_dir.name + ".old")
    if trash.exists():
        shutil.rmtree(trash)
    if final_dir.exists():
        os.replace(final_dir, trash)
    os.replace(temp, final_dir)
    if trash.exists():
        shutil.rmtree(trash)


def _write_sidecar(sidecar: dict, temp: Path) -> str:
    path = temp / SIDECAR
    with path.open("w") as handle:
        json.dump(sidecar, handle, indent=2, sort_keys=True)
    return file_sha256(path)


def write_partition(
    flows: FlowTable, final_dir: Path, day_start: int,
    fmt: Optional[int] = None,
) -> Tuple[dict, str]:
    """Write one day's flows as a v2 or v3 partition directory, atomically.

    Builds the whole partition (segments + sidecar) under a temporary
    sibling directory and swaps it into place, so readers never observe
    a half-written day.  ``fmt`` picks the layout (default: v3, or v2
    under ``REPRO_NO_COLSTORE_V3``).  Returns ``(sidecar payload,
    sidecar sha256)``; the caller records the sidecar hash in the store
    manifest, chaining manifest → sidecar → column parts.
    """
    if fmt is None:
        fmt = FORMAT_V3 if v3_enabled() else FORMAT_V2
    if fmt not in (FORMAT_V2, FORMAT_V3):
        raise ValueError(f"unknown columnar partition format {fmt!r}")
    final_dir = Path(final_dir)
    temp = final_dir.with_name(final_dir.name + ".tmp")
    if temp.exists():
        shutil.rmtree(temp)
    temp.mkdir(parents=True)
    if fmt == FORMAT_V3:
        sidecar = _build_partition_v3(flows, temp, day_start)
    else:
        sidecar = _build_partition_v2(flows, temp, day_start)
    sidecar_sha = _write_sidecar(sidecar, temp)
    _seal_dir(temp, final_dir)
    obs.counter("colstore.partitions-written").inc()
    return sidecar, sidecar_sha


def _build_partition_v2(
    flows: FlowTable, temp: Path, day_start: int
) -> dict:
    columns_meta: Dict[str, Dict[str, object]] = {}
    for name in COLUMNS:
        column = flows.column(name)
        sha = write_npy_segment(column, temp / f"{name}.npy")
        columns_meta[name] = {
            "sha256": sha,
            "dtype": column.dtype.str,
            "nbytes": int(column.nbytes),
            "min": int(column.min()) if len(column) else None,
            "max": int(column.max()) if len(column) else None,
        }
    byte_bins, flow_bins = _hour_preaggregates(flows, day_start)
    return {
        "format": FORMAT_V2,
        "rows": len(flows),
        "day_start": day_start,
        "columns": columns_meta,
        "derived_zones": _derived_zones(flows),
        "hours": {"bytes": byte_bins, "flows": flow_bins},
    }


class _PartWriter:
    """Accumulates encoded parts into one aligned ``segments.bin`` blob."""

    def __init__(self) -> None:
        self._blob = bytearray()

    def add(self, array: np.ndarray) -> Dict[str, object]:
        array = np.ascontiguousarray(array)
        pad = (-len(self._blob)) % _PART_ALIGN
        self._blob.extend(b"\x00" * pad)
        offset = len(self._blob)
        data = array.tobytes()
        self._blob.extend(data)
        return {
            "offset": offset,
            "nbytes": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
            "dtype": array.dtype.str,
            "count": int(array.size),
        }

    def write(self, path: Path) -> int:
        with path.open("wb") as handle:
            handle.write(self._blob)
        return len(self._blob)


def _build_partition_v3(
    flows: FlowTable, temp: Path, day_start: int
) -> dict:
    writer = _PartWriter()
    columns_meta: Dict[str, Dict[str, object]] = {}
    indexes: Dict[str, Dict[str, object]] = {}
    rows = len(flows)
    for name in COLUMNS:
        column = flows.column(name)
        enc_meta, parts = encodings.encode_column(column)
        meta: Dict[str, object] = {
            "dtype": column.dtype.str,
            "nbytes": int(column.nbytes),
            "min": int(column.min()) if rows else None,
            "max": int(column.max()) if rows else None,
        }
        meta.update(enc_meta)
        meta["parts"] = {
            role: writer.add(part) for role, part in parts.items()
        }
        columns_meta[name] = meta
        if (
            enc_meta["encoding"] == encodings.DICT
            and enc_meta["cardinality"] <= encodings.BITMAP_MAX_CARD
            and rows
        ):
            bitmap = encodings.build_bitmap(
                parts["codes"], enc_meta["cardinality"]
            )
            indexes[name] = {
                "kind": "bitmap",
                "cardinality": enc_meta["cardinality"],
                "row_nbytes": encodings.bitmap_row_nbytes(rows),
                "part": writer.add(bitmap),
            }
    writer.write(temp / DATA_FILE)
    byte_bins, flow_bins = _hour_preaggregates(flows, day_start)
    return {
        "format": FORMAT_V3,
        "rows": rows,
        "day_start": day_start,
        "data_file": DATA_FILE,
        "columns": columns_meta,
        "indexes": indexes,
        "derived_zones": _derived_zones(flows),
        "hours": {"bytes": byte_bins, "flows": flow_bins},
    }


# -- reads --------------------------------------------------------------------


def read_sidecar(partition_dir: Path, expected_sha: Optional[str],
                 what: str) -> dict:
    """Load and validate one partition sidecar.

    ``expected_sha`` (from the store manifest) is verified first, so a
    tampered sidecar cannot vouch for tampered segments.  Structural
    problems — unparseable JSON, missing fields, wrong column set —
    raise :class:`FlowStoreError`.
    """
    path = Path(partition_dir) / SIDECAR
    if expected_sha is not None:
        _verify_file(path, expected_sha, f"sidecar for {what}")
    elif not path.exists():
        raise FlowStoreError(f"sidecar for {what} is missing: {path}")
    try:
        with path.open() as handle:
            sidecar = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise FlowStoreError(
            f"sidecar for {what} cannot be parsed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if (
        not isinstance(sidecar, dict)
        or sidecar.get("format") not in (FORMAT_V2, FORMAT_V3)
    ):
        raise FlowStoreError(
            f"sidecar for {what} has unsupported format "
            f"{sidecar.get('format') if isinstance(sidecar, dict) else sidecar!r}"
        )
    columns = sidecar.get("columns")
    if not isinstance(columns, dict) or set(columns) != set(COLUMNS):
        present = sorted(columns) if isinstance(columns, dict) else columns
        raise FlowStoreError(
            f"sidecar for {what} does not describe the flow schema "
            f"(columns: {present})"
        )
    return sidecar


class ColumnBundle:
    """The projected columns of one partition, duck-typing the scan API.

    Provides the subset of :class:`~repro.flows.table.FlowTable` the
    query engine's partition scan uses — ``len()``, :meth:`column`,
    :meth:`key_array`, :meth:`group_index`, :meth:`filter` — over a
    dict of (possibly memory-mapped) column arrays.  Derived keys are
    computed with the same helpers as ``FlowTable``, so every scan path
    produces identical values.

    A bundle produced by :meth:`ColumnarPartition.load` pickles
    *cheaply*: its reduce payload is the partition path, sidecar
    (manifest entry), and projected column names — never the mapped
    bytes — and unpickling re-maps the segments in the target process
    through the usual checksum verification.  A derived bundle (e.g.
    from :meth:`filter`) has no backing segments and falls back to
    shipping its materialized arrays by value.
    """

    __slots__ = ("_cols", "_rows", "_derived", "_indexes", "_source")

    def __init__(self, columns: Dict[str, np.ndarray], rows: int):
        self._cols = columns
        self._rows = rows
        self._derived: Dict[str, np.ndarray] = {}
        self._indexes: Dict[str, GroupIndex] = {}
        #: (day, partition dir, sidecar, column names, mmap flag) when
        #: the bundle maps on-disk segments; None once derived.
        self._source: Optional[tuple] = None

    def __reduce__(self):
        if self._source is not None:
            day, directory, sidecar, columns, mmap = self._source
            return (
                _rebuild_bundle,
                (day, directory, _slim_sidecar(sidecar), columns, mmap),
            )
        arrays = {
            name: np.ascontiguousarray(col)
            for name, col in self._cols.items()
        }
        return (ColumnBundle, (arrays, self._rows))

    def __len__(self) -> int:
        return self._rows

    @property
    def loaded_columns(self) -> Tuple[str, ...]:
        """The physical columns present in the bundle, sorted."""
        return tuple(sorted(self._cols))

    def column(self, name: str) -> np.ndarray:
        col = self._cols.get(name)
        if col is None:
            raise KeyError(
                f"column {name!r} was not projected into this scan "
                f"(loaded: {self.loaded_columns})"
            )
        return col

    def key_array(self, key: str) -> np.ndarray:
        if key in self._cols:
            return self._cols[key]
        arr = self._derived.get(key)
        if arr is not None:
            return arr
        if key == "service_port":
            arr = compute_service_port(
                self.column("proto"), self.column("src_port"),
                self.column("dst_port"),
            )
        elif key == "transport":
            arr = compute_transport(
                self.column("proto"), self.key_array("service_port")
            )
        else:
            raise KeyError(
                f"unknown group key {key!r}; columns are "
                f"{sorted(COLUMNS)} and derived keys are {DERIVED_KEYS}"
            )
        return self._derived.setdefault(key, arr)

    def group_index(self, key: str) -> GroupIndex:
        index = self._indexes.get(key)
        if index is not None:
            groupby.record_reuse()
            return index
        index = GroupIndex.from_values(self.key_array(key))
        groupby.record_build(key, self._rows)
        return self._indexes.setdefault(key, index)

    def filter(self, mask: np.ndarray) -> "ColumnBundle":
        """Rows where ``mask`` is true, materialized off the mmap."""
        mask = np.asarray(mask)
        if mask.dtype != np.bool_ or mask.shape[0] != self._rows:
            raise ValueError(
                "mask must be a boolean array of partition length"
            )
        selected = {name: col[mask] for name, col in self._cols.items()}
        if selected:
            rows = len(next(iter(selected.values())))
        else:
            rows = int(np.count_nonzero(mask))
        return ColumnBundle(selected, rows)


def _slim_sidecar(sidecar: dict) -> dict:
    """A sidecar copy without planner-only stats, for bundle shipping.

    Dictionary value/count lists and bitmap-index metadata feed cost
    estimation and the predicate-first scan; rebuilding a projected
    bundle in a worker needs neither, and dropping them keeps the
    pickle payload code-space-sized regardless of cardinality.
    """
    columns = {}
    for name, meta in sidecar["columns"].items():
        if "values" in meta or "counts" in meta:
            meta = {
                key: value for key, value in meta.items()
                if key not in ("values", "counts")
            }
        columns[name] = meta
    slim = dict(sidecar)
    slim["columns"] = columns
    slim.pop("indexes", None)
    return slim


def _rebuild_bundle(
    day: str, partition_dir: str, sidecar: dict,
    columns: Tuple[str, ...], mmap: bool,
) -> "ColumnBundle":
    """Unpickle hook: re-map a bundle's segments in this process.

    Goes through :meth:`ColumnarPartition.load`, so the rebuilt bundle
    is checksum-verified against the shipped sidecar (memoized by the
    per-process verified-cache) exactly like a locally opened one.
    """
    partition = ColumnarPartition(day, Path(partition_dir), sidecar)
    bundle, _ = partition.load(columns, mmap=mmap)
    return bundle


class ColumnarPartition:
    """One v2/v3 partition directory opened for reading.

    Pickles by ``(day, path, sidecar)`` — plain data, no open mmaps —
    so partition handles are cheap to ship to scan workers.  The v3
    data-file mmap is opened lazily per handle and never pickled.
    """

    __slots__ = ("day", "_dir", "_sidecar", "_data", "strategy_cache")

    def __init__(self, day: str, partition_dir: Path, sidecar: dict):
        self.day = day
        self._dir = Path(partition_dir)
        self._sidecar = sidecar
        self._data: Optional[np.ndarray] = None
        #: scratch for the query planner: memoized bitmap-vs-scan
        #: choices, valid as long as this handle (i.e. one manifest sha)
        self.strategy_cache: Dict[object, Tuple[str, int]] = {}

    def __reduce__(self):
        return (ColumnarPartition, (self.day, str(self._dir), self._sidecar))

    @property
    def rows(self) -> int:
        return int(self._sidecar["rows"])

    @property
    def format(self) -> int:
        return int(self._sidecar.get("format", FORMAT_V2))

    @property
    def sidecar(self) -> dict:
        return self._sidecar

    def zone(self, column: str) -> Optional[Tuple[int, int]]:
        """The zone map's (min, max) for one column; None when unknown.

        Derived keys (``service_port``, ``transport``) consult the
        seal-time ``derived_zones`` block; sidecars written before it
        existed simply return None (no pruning, never wrong pruning).
        """
        if column in DERIVED_KEYS:
            zones = self._sidecar.get("derived_zones") or {}
            zone = zones.get(column)
            if not zone or zone[0] is None:
                return None
            return int(zone[0]), int(zone[1])
        meta = self._sidecar["columns"].get(column)
        if meta is None or meta.get("min") is None:
            return None
        return int(meta["min"]), int(meta["max"])

    def column_nbytes(self, columns: Iterable[str]) -> int:
        """On-disk bytes behind ``columns`` (estimation, I/O accounting).

        Raw segment bytes for v2; the summed encoded part bytes for v3
        — i.e. what a scan of those columns would actually read.
        """
        total = 0
        for name in columns:
            meta = self._sidecar["columns"][name]
            parts = meta.get("parts")
            if parts:
                total += sum(int(p["nbytes"]) for p in parts.values())
            else:
                total += int(meta["nbytes"])
        return total

    def index_meta(self, column: str) -> Optional[dict]:
        """Bitmap-index metadata for one column, or None."""
        return (self._sidecar.get("indexes") or {}).get(column)

    def encoding_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-column seal decisions for ``store stats`` and benches.

        Maps column name to raw vs. stored bytes, the chosen encoding,
        and (for dictionaries) the cardinality.  v2 partitions report
        every column as ``raw`` at ratio 1.0.
        """
        stats: Dict[str, Dict[str, object]] = {}
        for name, meta in self._sidecar["columns"].items():
            parts = meta.get("parts")
            if parts:
                stored = sum(int(p["nbytes"]) for p in parts.values())
            else:
                stored = int(meta["nbytes"])
            entry: Dict[str, object] = {
                "encoding": meta.get("encoding", encodings.RAW),
                "raw_nbytes": int(meta["nbytes"]),
                "stored_nbytes": stored,
            }
            if meta.get("cardinality") is not None:
                entry["cardinality"] = int(meta["cardinality"])
            index = self.index_meta(name)
            if index is not None:
                entry["index_nbytes"] = int(index["part"]["nbytes"])
            stats[name] = entry
        return stats

    def hour_preaggregates(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """``(day_start, per-hour bytes, per-hour flows)`` pre-aggregates."""
        hours = self._sidecar["hours"]
        return (
            int(self._sidecar["day_start"]),
            np.asarray(hours["bytes"], dtype=np.int64),
            np.asarray(hours["flows"], dtype=np.int64),
        )

    def load(
        self, columns: Sequence[str], mmap: bool = True
    ) -> Tuple[ColumnBundle, int]:
        """Load the requested physical columns, verifying their checksums.

        Returns ``(bundle, bytes_read)`` where ``bytes_read`` counts the
        on-disk bytes behind the loaded columns (encoded bytes for v3).
        Missing or corrupt segments raise :class:`FlowStoreError`
        naming the column.
        """
        arrays: Dict[str, np.ndarray] = {}
        bytes_read = 0
        if self.format == FORMAT_V3:
            data = self._data_u8()
            for name in columns:
                array, nbytes = self._decode_column(name, data, mmap)
                arrays[name] = array
                bytes_read += nbytes
        else:
            for name in columns:
                meta = self._sidecar["columns"][name]
                path = self._dir / f"{name}.npy"
                _verify_file(
                    path, str(meta["sha256"]),
                    f"column {name!r} of partition {self.day}",
                )
                try:
                    arrays[name] = read_npy_segment(
                        path, np.dtype(str(meta["dtype"])), self.rows,
                        mmap=mmap,
                    )
                except (OSError, ValueError) as exc:
                    raise FlowStoreError(
                        f"column {name!r} of partition {self.day} cannot "
                        f"be read: {type(exc).__name__}: {exc}"
                    ) from exc
                bytes_read += int(meta["nbytes"])
        obs.counter("colstore.loads").inc()
        obs.counter("colstore.columns-loaded").inc(len(arrays))
        obs.counter("colstore.bytes-mapped").inc(bytes_read)
        bundle = ColumnBundle(arrays, self.rows)
        bundle._source = (
            self.day, str(self._dir), self._sidecar, tuple(columns), mmap
        )
        return bundle, bytes_read

    # -- v3 internals --------------------------------------------------------

    def _data_u8(self) -> np.ndarray:
        """The partition's ``segments.bin`` as a flat uint8 mmap, cached."""
        if self._data is not None:
            return self._data
        path = self._dir / str(self._sidecar.get("data_file", DATA_FILE))
        try:
            if path.stat().st_size == 0:
                # An empty partition has no parts; mmap rejects 0 bytes.
                data = np.zeros(0, dtype=np.uint8)
            else:
                data = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise FlowStoreError(
                f"data file for partition {self.day} cannot be read: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        self._data = data
        return data

    def _part(
        self, part_meta: dict, data: np.ndarray, what: str, label: str
    ) -> np.ndarray:
        """One verified encoded part as a typed view into the data file."""
        offset = int(part_meta["offset"])
        nbytes = int(part_meta["nbytes"])
        if offset + nbytes > data.size:
            raise FlowStoreError(
                f"{what} is corrupt: part {label!r} extends past the "
                f"end of the data file"
            )
        segment = data[offset:offset + nbytes]
        _verify_slice(
            self._dir / str(self._sidecar.get("data_file", DATA_FILE)),
            segment, str(part_meta["sha256"]), what, label,
        )
        dtype = np.dtype(str(part_meta["dtype"]))
        if nbytes % dtype.itemsize:
            raise FlowStoreError(
                f"{what} is corrupt: part {label!r} byte length does "
                f"not divide its dtype"
            )
        array = segment.view(dtype)
        if int(part_meta.get("count", array.size)) != array.size:
            raise FlowStoreError(
                f"{what} is corrupt: part {label!r} holds {array.size} "
                f"elements, sidecar says {part_meta.get('count')}"
            )
        return array

    def _column_parts(
        self, name: str, roles: Sequence[str], data: np.ndarray
    ) -> Tuple[Dict[str, np.ndarray], int]:
        """Load + verify the named parts of one column; count their bytes."""
        meta = self._sidecar["columns"][name]
        what = f"column {name!r} of partition {self.day}"
        parts_meta = meta.get("parts") or {}
        out: Dict[str, np.ndarray] = {}
        nbytes = 0
        for role in roles:
            part_meta = parts_meta.get(role)
            if part_meta is None:
                raise FlowStoreError(
                    f"{what} is corrupt: encoded part {role!r} is "
                    f"missing from the sidecar"
                )
            out[role] = self._part(part_meta, data, what, f"{name}/{role}")
            nbytes += int(part_meta["nbytes"])
        return out, nbytes

    def _decode_column(
        self, name: str, data: np.ndarray, mmap: bool
    ) -> Tuple[np.ndarray, int]:
        """Decode one v3 column to its logical array.

        Unknown (future) encodings degrade to the column's ``raw`` part
        when one is present — still checksum-verified — so a newer
        writer remains readable as long as it kept the fallback.
        """
        meta = self._sidecar["columns"][name]
        what = f"column {name!r} of partition {self.day}"
        encoding = str(meta.get("encoding", encodings.RAW))
        dtype = np.dtype(str(meta["dtype"]))
        if encoding == encodings.DICT:
            roles = ("codes", "values")
        elif encoding == encodings.DELTA:
            roles = ("deltas",)
        elif encoding == encodings.RAW:
            roles = ("raw",)
        else:
            if "raw" not in (meta.get("parts") or {}):
                raise FlowStoreError(
                    f"{what} uses unknown encoding {encoding!r} and "
                    f"carries no raw fallback part"
                )
            obs.counter("colstore.encoding-degraded").inc()
            encoding, roles = encodings.RAW, ("raw",)
        parts, nbytes = self._column_parts(name, roles, data)
        try:
            array = encodings.decode_column(
                {**meta, "encoding": encoding}, parts, dtype, self.rows
            )
        except (encodings.EncodingError, ValueError, KeyError) as exc:
            raise FlowStoreError(
                f"{what} cannot be decoded: {type(exc).__name__}: {exc}"
            ) from exc
        if array.size != self.rows:
            raise FlowStoreError(
                f"{what} is corrupt: decoded {array.size} rows, "
                f"sidecar says {self.rows}"
            )
        if not mmap and encoding == encodings.RAW:
            array = np.array(array, copy=True)
        return array, nbytes

    def _dict_values(
        self, name: str, data: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """A dict column's sorted value table (sidecar copy when small)."""
        meta = self._sidecar["columns"][name]
        stored = meta.get("values")
        if stored is not None:
            return np.asarray(stored, dtype=np.dtype(str(meta["dtype"]))), 0
        parts, nbytes = self._column_parts(name, ("values",), data)
        return parts["values"], nbytes

    def load_filtered(
        self, predicates: Sequence, columns: Sequence[str],
        mmap: bool = True,
    ) -> Tuple[ColumnBundle, int]:
        """Predicate-first scan of a v3 partition.

        Evaluates each predicate in the cheapest space available —
        bitmap-row OR/AND for indexed columns, dictionary-code compare
        for dict columns, decoded values for everything else — and only
        then gathers the surviving rows of the requested ``columns``.
        Returns ``(bundle, bytes_read)`` where the bundle holds the
        *filtered* rows (no further masking needed) and ``bytes_read``
        counts encoded part bytes plus gathered row bytes.

        ``predicates`` are :class:`repro.query.spec.Predicate`-shaped
        objects (``column``, ``op`` ∈ {"in", "range"}, sorted
        ``values``); ``columns`` must be physical column names.
        """
        if self.format != FORMAT_V3:
            raise FlowStoreError(
                f"partition {self.day} is not a v3 partition"
            )
        rows = self.rows
        data = self._data_u8()
        bytes_read = 0
        decoded: Dict[str, np.ndarray] = {}
        decoded_codes: Dict[str, np.ndarray] = {}
        mask: Optional[np.ndarray] = None
        deferred = []

        def gather(name: str, idx: np.ndarray) -> np.ndarray:
            nonlocal bytes_read
            if name in DERIVED_KEYS:
                proto = gather("proto", idx)
                service = compute_service_port(
                    proto, gather("src_port", idx), gather("dst_port", idx)
                )
                if name == "service_port":
                    return service
                return compute_transport(proto, service)
            cached = decoded.get(name)
            if cached is not None:
                return cached[idx]
            meta = self._sidecar["columns"][name]
            encoding = str(meta.get("encoding", encodings.RAW))
            if encoding == encodings.DICT:
                if name in decoded_codes:
                    codes = decoded_codes[name]
                else:
                    parts, nbytes = self._column_parts(
                        name, ("codes",), data
                    )
                    codes = parts["codes"]
                    decoded_codes[name] = codes
                    bytes_read += nbytes
                values, nbytes = self._dict_values(name, data)
                bytes_read += nbytes
                dtype = np.dtype(str(meta["dtype"]))
                return values[codes[idx]].astype(dtype, copy=False)
            if encoding == encodings.RAW:
                parts, _ = self._column_parts(name, ("raw",), data)
                bytes_read += int(idx.size) * parts["raw"].dtype.itemsize
                return parts["raw"][idx]
            # Delta (and unknown-degraded) columns decode whole.
            array, nbytes = self._decode_column(name, data, mmap=True)
            decoded[name] = array
            bytes_read += nbytes
            return array[idx]

        for pred in predicates:
            name = pred.column
            meta = (
                self._sidecar["columns"].get(name)
                if name not in DERIVED_KEYS else None
            )
            if meta is None or meta.get("encoding") != encodings.DICT:
                deferred.append(pred)
                continue
            values, nbytes = self._dict_values(name, data)
            bytes_read += nbytes
            # Compare in int64 space: out-of-range predicate values must
            # come back "absent", not wrap into a column's narrow dtype.
            values64 = values.astype(np.int64)
            requested = np.asarray(pred.values, dtype=np.int64)
            if pred.op == "in":
                slots = np.searchsorted(values64, requested)
                ok = slots < values64.size
                ok &= values64[np.minimum(slots, values64.size - 1)] == requested
                slots = slots[ok]
                if slots.size == 0:
                    mask = np.zeros(rows, dtype=bool)
                    break
                index = self.index_meta(name)
                if index is not None:
                    bitmap_part = self._part(
                        index["part"], data,
                        f"bitmap index on {name!r} of partition {self.day}",
                        f"index/{name}",
                    )
                    bytes_read += int(index["part"]["nbytes"])
                    bitmap = bitmap_part.reshape(
                        int(index["cardinality"]), int(index["row_nbytes"])
                    )
                    pred_mask = encodings.bitmap_select(bitmap, slots, rows)
                    obs.counter("colstore.bitmap-predicates").inc()
                else:
                    codes = decoded_codes.get(name)
                    if codes is None:
                        parts, nbytes = self._column_parts(
                            name, ("codes",), data
                        )
                        codes = parts["codes"]
                        decoded_codes[name] = codes
                        bytes_read += nbytes
                    if slots.size == 1:
                        pred_mask = codes == codes.dtype.type(slots[0])
                    else:
                        pred_mask = np.isin(
                            codes, slots.astype(codes.dtype)
                        )
            else:  # range
                lo = np.searchsorted(values64, requested[0], side="left")
                hi = np.searchsorted(values64, requested[-1], side="right")
                if lo >= hi:
                    mask = np.zeros(rows, dtype=bool)
                    break
                codes = decoded_codes.get(name)
                if codes is None:
                    parts, nbytes = self._column_parts(
                        name, ("codes",), data
                    )
                    codes = parts["codes"]
                    decoded_codes[name] = codes
                    bytes_read += nbytes
                pred_mask = (codes >= codes.dtype.type(lo)) & (
                    codes < codes.dtype.type(hi)
                )
            mask = pred_mask if mask is None else mask & pred_mask
            if not mask.any():
                break

        if mask is not None and not mask.any():
            idx = np.zeros(0, dtype=np.intp)
        elif mask is not None:
            idx = np.flatnonzero(mask)
        else:
            idx = np.arange(rows, dtype=np.intp)

        for pred in deferred:
            if idx.size == 0:
                break
            values = gather(pred.column, idx)
            requested = np.asarray(pred.values)
            if pred.op == "range":
                keep = (values >= requested[0]) & (values <= requested[-1])
            elif requested.size == 1:
                keep = values == requested[0]
            else:
                keep = np.isin(values, requested)
            idx = idx[keep]

        if idx.size == 0:
            # Nothing survived the predicates — build empty columns
            # straight from the sidecar dtypes (derived keys are
            # int64), skipping every decode the gather would pay.
            arrays = {
                name: np.zeros(0, dtype=(
                    np.int64 if name in DERIVED_KEYS
                    else np.dtype(str(self._sidecar["columns"][name]["dtype"]))
                ))
                for name in columns
            }
        else:
            arrays = {
                name: np.ascontiguousarray(gather(name, idx))
                for name in columns
            }
        obs.counter("colstore.loads").inc()
        obs.counter("colstore.columns-loaded").inc(len(arrays))
        obs.counter("colstore.bytes-mapped").inc(bytes_read)
        obs.counter("colstore.bitmap-scans").inc()
        return ColumnBundle(arrays, int(idx.size)), bytes_read

    def table(self, mmap: bool = False) -> FlowTable:
        """The whole partition as a :class:`FlowTable` (all columns).

        ``mmap=False`` (the default for the v1-compatible full-load
        path) materializes every column in memory.
        """
        bundle, _ = self.load(tuple(COLUMNS), mmap=mmap)
        return FlowTable({name: bundle.column(name) for name in COLUMNS})
