"""Sampled-NetFlow emulation and inversion.

Production routers export *sampled* NetFlow: only one in N packets is
inspected (§2's ISP operates at such scale).  Sampling changes what a
collector sees — small flows vanish entirely, counters shrink — and
analyses must invert it.  This module provides:

* :func:`packet_sample` — emulate deterministic-rate packet sampling
  over a flow table (binomial thinning of packet counts, proportional
  byte attribution, zero-packet flows dropped),
* :func:`scale_up` — the standard inversion: multiply counters by the
  sampling rate (unbiased for byte/packet *totals*, biased low for flow
  counts),
* :func:`effective_flow_fraction` — the fraction of flows that survive
  sampling, quantifying the flow-count bias.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.flows.table import COLUMNS, FlowTable


def packet_sample(table: FlowTable, rate: int, seed: int = 0) -> FlowTable:
    """Emulate 1-in-``rate`` packet sampling.

    Each flow's sampled packet count is drawn Binomial(packets, 1/rate);
    bytes are attributed proportionally (at least one byte per sampled
    packet); flows with no sampled packet are not exported, exactly as
    a sampling router behaves.  ``rate=1`` returns the table unchanged.
    """
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    if rate == 1 or len(table) == 0:
        return table
    rng = np.random.default_rng(seed)
    packets = table.column("n_packets")
    n_bytes = table.column("n_bytes")
    sampled_packets = rng.binomial(packets, 1.0 / rate)
    survives = sampled_packets > 0
    bytes_per_packet = n_bytes / np.maximum(packets, 1)
    # At least one byte per sampled packet, but never more than the
    # flow originally carried (degenerate byte/packet ratios would
    # otherwise let sampling inflate byte totals).
    sampled_bytes = np.minimum(
        np.maximum(
            np.round(bytes_per_packet * sampled_packets), sampled_packets
        ),
        n_bytes,
    ).astype(np.int64)
    columns: Dict[str, np.ndarray] = {
        name: table.column(name)[survives].copy() for name in COLUMNS
    }
    columns["n_packets"] = sampled_packets[survives].astype(np.int64)
    columns["n_bytes"] = sampled_bytes[survives]
    return FlowTable(columns)


def scale_up(table: FlowTable, rate: int) -> FlowTable:
    """Invert packet sampling by scaling the counters by ``rate``.

    Unbiased for byte and packet totals; flow counts (and therefore
    connection counts and distinct-IP counts) remain biased low — the
    §6/§7 caveat any sampled-NetFlow analysis carries.
    """
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    if rate == 1:
        return table
    columns: Dict[str, np.ndarray] = {
        name: table.column(name).copy() for name in COLUMNS
    }
    columns["n_packets"] = columns["n_packets"] * rate
    columns["n_bytes"] = columns["n_bytes"] * rate
    return FlowTable(columns)


def effective_flow_fraction(
    original: FlowTable, sampled: FlowTable
) -> float:
    """Fraction of original flows still visible after sampling."""
    if len(original) == 0:
        raise ValueError("original table is empty")
    return len(sampled) / len(original)


def expected_survival_probability(
    table: FlowTable, rate: int
) -> float:
    """Analytic expected fraction of flows surviving 1-in-``rate``
    sampling: mean over flows of ``1 - (1 - 1/rate)^packets``."""
    if rate < 1:
        raise ValueError(f"sampling rate must be >= 1, got {rate}")
    if len(table) == 0:
        raise ValueError("table is empty")
    packets = table.column("n_packets").astype(np.float64)
    return float(np.mean(1.0 - np.power(1.0 - 1.0 / rate, packets)))
