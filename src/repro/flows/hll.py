"""HyperLogLog distinct counting for flow attributes.

The EDU dataset alone holds 5.2 B flows (§2); distinct-IP statistics
(Fig 8's "order of households" proxy) over traces of that size cannot
keep exact sets per time bin.  This is a standard HyperLogLog
(Flajolet et al.) over 64-bit hashes with the usual small-range
correction, tuned for 32-bit address spaces.

Accuracy: the relative standard error is ~1.04/sqrt(2^p); the default
``p=12`` (4096 registers, 4 KiB) gives ~1.6%.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

_HASH_BITS = 64


def _hash64(values: np.ndarray, salt: int) -> np.ndarray:
    """Deterministic 64-bit mix of 32/64-bit integer values.

    Uses the splitmix64 finalizer — fast, vectorizable, and well
    distributed; a keyed cryptographic hash is unnecessary here because
    HLL inputs are not adversarial in this pipeline.
    """
    x = values.astype(np.uint64) + np.uint64(
        0x9E3779B97F4A7C15 * (salt + 1) & 0xFFFFFFFFFFFFFFFF
    )
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """A mergeable distinct counter."""

    __slots__ = ("_p", "_salt", "_registers")

    def __init__(self, p: int = 12, salt: int = 0):
        if not 4 <= p <= 18:
            raise ValueError(f"precision must be in [4, 18], got {p}")
        self._p = p
        self._salt = salt
        self._registers = np.zeros(1 << p, dtype=np.uint8)

    @property
    def precision(self) -> int:
        """The register-count exponent ``p``."""
        return self._p

    @property
    def memory_bytes(self) -> int:
        """Register memory footprint."""
        return self._registers.nbytes

    def add(self, value: int) -> None:
        """Add one integer value."""
        self.add_many(np.asarray([value], dtype=np.uint64))

    def add_many(self, values: Union[np.ndarray, Iterable[int]]) -> None:
        """Add a batch of integer values (vectorized)."""
        array = np.asarray(list(values) if not isinstance(
            values, np.ndarray) else values, dtype=np.uint64)
        if array.size == 0:
            return
        hashed = _hash64(array, self._salt)
        indices = (hashed >> np.uint64(_HASH_BITS - self._p)).astype(
            np.int64
        )
        remainder = hashed << np.uint64(self._p)
        # Rank: position of the leftmost 1 bit in the remainder, with
        # the all-zero remainder mapping to the maximum rank.
        width = _HASH_BITS - self._p
        ranks = np.full(array.size, width + 1, dtype=np.uint8)
        nonzero = remainder != 0
        if nonzero.any():
            # Leading zero count via float64 exponent is unsafe at 64
            # bits; use a bit-length loop on the log2 instead.
            shifted = remainder[nonzero]
            lz = np.zeros(shifted.size, dtype=np.uint8)
            current = shifted.copy()
            # Binary search over the leading-zero count.
            for step in (32, 16, 8, 4, 2, 1):
                mask = current < (np.uint64(1) << np.uint64(64 - step))
                lz[mask] += step
                current[mask] = current[mask] << np.uint64(step)
            ranks_nz = (lz + 1).astype(np.uint8)
            ranks[nonzero] = np.minimum(ranks_nz, width + 1)
        np.maximum.at(self._registers, indices, ranks)

    def count(self) -> float:
        """Estimate the number of distinct values added."""
        m = self._registers.size
        inverse_sum = np.sum(np.exp2(-self._registers.astype(np.float64)))
        estimate = _alpha(m) * m * m / inverse_sum
        if estimate <= 2.5 * m:
            zeros = int(np.count_nonzero(self._registers == 0))
            if zeros:
                return m * float(np.log(m / zeros))
        return float(estimate)

    def _check_mergeable(self, other: "HyperLogLog") -> None:
        """Raise unless ``other`` shares this sketch's parameters.

        Mismatched precisions mean different register counts; taking an
        elementwise maximum would silently misalign registers and
        produce a garbage estimate, so both mismatches are an explicit
        error.
        """
        if other._p != self._p:
            raise ValueError(
                f"cannot merge HyperLogLog sketches with different "
                f"precisions (p={self._p} vs p={other._p}); registers "
                f"would misalign"
            )
        if other._salt != self._salt:
            raise ValueError(
                f"cannot merge HyperLogLog sketches with different "
                f"hash salts ({self._salt} vs {other._salt})"
            )

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union with another sketch (same precision and salt)."""
        self._check_mergeable(other)
        merged = HyperLogLog(self._p, self._salt)
        merged._registers = np.maximum(self._registers, other._registers)
        return merged

    def union_update(self, other: "HyperLogLog") -> None:
        """In-place union — the allocation-free form of :meth:`merge`.

        The query engine merges one sketch per partition per group;
        updating the accumulator in place avoids a fresh register array
        per merge.
        """
        self._check_mergeable(other)
        np.maximum(self._registers, other._registers, out=self._registers)

    def relative_error(self) -> float:
        """The theoretical relative standard error of the sketch."""
        return 1.04 / np.sqrt(self._registers.size)
