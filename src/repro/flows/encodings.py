"""Column encodings for the v3 partition format.

Each encoder turns a 1-D numpy array into one or more byte *parts* plus a
JSON-serializable metadata dict; the matching decoder reconstructs the exact
array (same dtype, same values).  Encoders are pure functions of the input
array so seal decisions are deterministic.

Encodings:

- ``raw``   — the array's own bytes, C-contiguous.  Universal fallback.
- ``dict``  — sorted unique values + small-dtype codes.  Chosen for
  low-cardinality columns (proto, ports, ASNs); also powers bitmap indexes
  and code-space predicate evaluation.
- ``delta`` — first value + bit-packed per-row deltas.  Chosen for
  near-sorted columns (hour) where deltas fit in a few bits per row.

Bit packing is MSB-first via ``np.packbits`` over a ``(rows, bits)`` bit
matrix, so the packed size is ``ceil(rows * bits / 8)`` bytes.
"""
from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

RAW = "raw"
DICT = "dict"
DELTA = "delta"

ENCODINGS = (RAW, DICT, DELTA)

# Above this many distinct values a dictionary stops paying for itself.
DICT_MAX_CARD = 65536
# Exact per-value counts are persisted in the sidecar only up to this
# cardinality; beyond it the planner falls back to a uniform estimate.
STATS_MAX_CARD = 1024
# Bitmap indexes are built only for very low cardinality columns: each
# distinct value costs rows/8 bytes of index.
BITMAP_MAX_CARD = 16

# Keep delta spans comfortably inside int64 arithmetic.
_DELTA_MAX_SPAN = 1 << 62


class EncodingError(ValueError):
    """Raised when encoded parts and metadata are inconsistent."""


def codes_dtype(cardinality: int) -> np.dtype:
    """Smallest unsigned dtype able to index ``cardinality`` dictionary slots."""
    if cardinality <= 1 << 8:
        return np.dtype(np.uint8)
    if cardinality <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


# ---------------------------------------------------------------------------
# bit packing


def pack_bits(offsets: np.ndarray, bits: int) -> np.ndarray:
    """Pack non-negative int64 ``offsets`` into ``bits`` bits each (MSB first)."""
    if bits == 0 or offsets.size == 0:
        return np.zeros(0, dtype=np.uint8)
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    matrix = (offsets.astype(np.uint64)[:, None] >> shifts) & np.uint64(1)
    return np.packbits(matrix.astype(np.uint8).reshape(-1))


def unpack_bits(packed: np.ndarray, rows: int, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns int64 offsets of length ``rows``."""
    if bits == 0 or rows == 0:
        return np.zeros(rows, dtype=np.int64)
    need = rows * bits
    raw = np.unpackbits(packed, count=need).astype(np.int64)
    matrix = raw.reshape(rows, bits)
    weights = (np.int64(1) << np.arange(bits - 1, -1, -1, dtype=np.int64))
    return matrix @ weights


# ---------------------------------------------------------------------------
# dictionary encoding


def dict_encode(array: np.ndarray) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]] | None:
    """Encode via sorted unique values + codes, or None when not worthwhile."""
    values, codes, counts = np.unique(array, return_inverse=True, return_counts=True)
    card = int(values.size)
    if card > DICT_MAX_CARD:
        return None
    cdtype = codes_dtype(max(card, 1))
    codes = np.ascontiguousarray(codes.astype(cdtype))
    values = np.ascontiguousarray(values)
    meta: Dict[str, Any] = {
        "encoding": DICT,
        "cardinality": card,
        "codes_dtype": cdtype.str,
        "values_dtype": values.dtype.str,
    }
    if card <= STATS_MAX_CARD:
        meta["values"] = [int(v) for v in values]
        meta["counts"] = [int(c) for c in counts]
    return meta, {"codes": codes, "values": values}


def dict_decode(parts: Dict[str, np.ndarray], meta: Dict[str, Any],
                dtype: np.dtype) -> np.ndarray:
    values = parts["values"]
    codes = parts["codes"]
    if values.size == 0:
        if codes.size:
            raise EncodingError("dict codes present but value table empty")
        return np.zeros(0, dtype=dtype)
    if int(codes.max(initial=0)) >= values.size:
        raise EncodingError("dict code out of range for value table")
    return values[codes].astype(dtype, copy=False)


# ---------------------------------------------------------------------------
# delta encoding


def delta_encode(array: np.ndarray) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]] | None:
    """Encode as base + bit-packed deltas, or None when deltas are too wide."""
    if array.size == 0:
        return (
            {"encoding": DELTA, "base": 0, "delta_min": 0, "bits": 0},
            {"deltas": np.zeros(0, dtype=np.uint8)},
        )
    if array.dtype.kind not in "iu":
        return None
    as_int = array.astype(np.int64)
    # Span guard with Python ints: huge uint64-ish ranges would overflow diff.
    lo, hi = int(as_int.min()), int(as_int.max())
    if hi - lo >= _DELTA_MAX_SPAN:
        return None
    deltas = np.diff(as_int)
    if deltas.size:
        dmin, dmax = int(deltas.min()), int(deltas.max())
    else:
        dmin = dmax = 0
    if dmax - dmin >= _DELTA_MAX_SPAN:
        return None
    bits = int(dmax - dmin).bit_length()
    offsets = (deltas - dmin).astype(np.int64)
    packed = pack_bits(offsets, bits)
    meta = {
        "encoding": DELTA,
        "base": int(as_int[0]),
        "delta_min": dmin,
        "bits": bits,
    }
    return meta, {"deltas": packed}


def delta_decode(parts: Dict[str, np.ndarray], meta: Dict[str, Any],
                 dtype: np.dtype, rows: int) -> np.ndarray:
    if rows == 0:
        return np.zeros(0, dtype=dtype)
    bits = int(meta["bits"])
    offsets = unpack_bits(parts["deltas"], rows - 1, bits)
    deltas = offsets + np.int64(meta["delta_min"])
    out = np.empty(rows, dtype=np.int64)
    out[0] = np.int64(meta["base"])
    if rows > 1:
        np.cumsum(deltas, out=out[1:])
        out[1:] += np.int64(meta["base"])
    return out.astype(dtype, copy=False)


# ---------------------------------------------------------------------------
# bitmap indexes


def build_bitmap(codes: np.ndarray, cardinality: int) -> np.ndarray:
    """Packed per-value bit rows: shape ``(cardinality, ceil(rows/8))``."""
    rows = codes.size
    onehot = codes[None, :] == np.arange(cardinality, dtype=codes.dtype)[:, None]
    packed = np.packbits(onehot, axis=1)
    if rows == 0:
        packed = packed.reshape(cardinality, 0)
    return np.ascontiguousarray(packed)


def bitmap_row_nbytes(rows: int) -> int:
    return (rows + 7) // 8


def bitmap_select(bitmap: np.ndarray, value_slots: np.ndarray, rows: int) -> np.ndarray:
    """OR the packed rows for ``value_slots`` and unpack to a bool mask."""
    if value_slots.size == 0:
        return np.zeros(rows, dtype=bool)
    merged = bitmap[value_slots[0]]
    for slot in value_slots[1:]:
        merged = merged | bitmap[slot]
    return np.unpackbits(merged, count=rows).view(bool)


# ---------------------------------------------------------------------------
# seal-time choice


#: Delta must beat the best random-access encoding by this factor to be
#: chosen.  Dict and raw columns can be gathered row-by-row after a
#: predicate, but a delta column pays a whole-column unpack + prefix sum
#: on *every* partial scan — only a large size win (near-sorted columns
#: like ``hour``) covers that decode tax.
DELTA_WIN_FACTOR = 4

def encode_column(array: np.ndarray) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Pick the cheapest-to-scan encoding for ``array``.

    Returns ``(meta, parts)`` where ``meta['encoding']`` names the winner and
    ``parts`` maps part-role names to contiguous arrays to be serialized.
    Smallest wins among the random-access encodings (dict, raw); delta is
    admitted only past :data:`DELTA_WIN_FACTOR`.
    """
    raw = np.ascontiguousarray(array)
    raw_nbytes = raw.nbytes

    access_size = raw_nbytes
    best = None
    encoded = dict_encode(array)
    if encoded is not None:
        meta, parts = encoded
        size = sum(p.nbytes for p in parts.values())
        # A bitmap-range dictionary wins outright when it beats raw at all:
        # code-space predicates and bitmap indexes are worth more than the
        # bytes another encoding might additionally shave off.
        if meta["cardinality"] <= BITMAP_MAX_CARD and size < raw_nbytes:
            return meta, parts
        if size < raw_nbytes:
            best = (meta, parts)
            access_size = size

    encoded = delta_encode(array)
    if encoded is not None:
        meta, parts = encoded
        size = sum(p.nbytes for p in parts.values())
        if size * DELTA_WIN_FACTOR < access_size:
            return meta, parts

    if best is None:
        return {"encoding": RAW}, {"raw": raw}
    return best[0], best[1]


def decode_column(meta: Dict[str, Any], parts: Dict[str, np.ndarray],
                  dtype: np.dtype, rows: int) -> np.ndarray:
    """Decode any known encoding back to the logical array."""
    encoding = meta.get("encoding", RAW)
    if encoding == RAW:
        return parts["raw"].astype(dtype, copy=False)
    if encoding == DICT:
        out = dict_decode(parts, meta, dtype)
    elif encoding == DELTA:
        out = delta_decode(parts, meta, dtype, rows)
    else:
        raise EncodingError(f"unknown encoding {encoding!r}")
    if out.size != rows:
        raise EncodingError(
            f"decoded {out.size} rows for {encoding} column, expected {rows}")
    return out
