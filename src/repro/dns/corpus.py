"""Synthetic domain corpus and resolution table.

Stands in for the paper's CT-log / Rapid7-FDNS / Umbrella datasets.
The corpus is generated over the scenario's enterprise and educational
ASes: every organization gets a zone with ``www``/apex/utility hosts; a
configurable fraction additionally operates VPN gateways under
``*vpn*`` names.  A sub-fraction of those gateways shares the address
of the organization's ``www`` host — the case §6's elimination step
exists for (and deliberately undercounts, making the estimate
conservative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.netbase.asdb import ASCategory, ASRegistry
from repro.netbase.prefixes import PrefixMap, deterministic_addresses_in

#: Dataset labels mirroring §6's three domain sources.
SOURCES = ("ct-logs", "fdns", "umbrella")


@dataclass(frozen=True)
class DomainRecord:
    """One domain observation from one source dataset."""

    domain: str
    source: str

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValueError(f"unknown domain source: {self.source!r}")


class DNSCorpus:
    """Domain observations plus an A-record resolution table."""

    def __init__(
        self,
        records: Sequence[DomainRecord],
        resolutions: Dict[str, Tuple[int, ...]],
    ):
        self._records = list(records)
        self._resolutions = dict(resolutions)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[DomainRecord]:
        """All domain observations."""
        return list(self._records)

    def all_domains(self) -> List[str]:
        """Distinct observed domains, sorted."""
        return sorted({r.domain for r in self._records})

    def domains_from(self, source: str) -> List[str]:
        """Distinct domains observed by one source dataset."""
        if source not in SOURCES:
            raise ValueError(f"unknown domain source: {source!r}")
        return sorted({r.domain for r in self._records if r.source == source})

    def resolve(self, domain: str) -> Tuple[int, ...]:
        """A-record addresses for ``domain`` (empty if unresolvable).

        Resolution is attempted for *any* name, matching how §6 resolves
        both candidates and their ``www`` siblings, whether or not the
        sibling was itself observed in a source dataset.
        """
        return self._resolutions.get(domain.lower().rstrip("."), ())

    def merged_with(self, other: "DNSCorpus") -> "DNSCorpus":
        """Union of two corpora; later resolutions win on conflict."""
        resolutions = dict(self._resolutions)
        resolutions.update(other._resolutions)
        return DNSCorpus(self._records + other._records, resolutions)


@dataclass(frozen=True)
class VPNGroundTruth:
    """Generator-side ground truth (never read by the analysis).

    ``dedicated_gateway_ips`` are VPN gateways on their own addresses —
    the ones the domain-based classifier can find.  ``shared_gateway_ips``
    sit on the organization's www address and are deliberately lost by
    the elimination step.
    """

    dedicated_gateway_ips: FrozenSet[int]
    shared_gateway_ips: FrozenSet[int]

    @property
    def all_gateway_ips(self) -> FrozenSet[int]:
        """Every address that actually terminates VPN traffic."""
        return self.dedicated_gateway_ips | self.shared_gateway_ips


_GATEWAY_NAME_PATTERNS = (
    "vpn.{zone}",
    "vpn2.{zone}",
    "companyvpn{k}.{zone}",
    "remote-vpn.{zone}",
    "sslvpn.gw.{zone}",
)

_NOISE_HOSTS = ("mail", "cdn7", "shop", "api", "portal")

_ZONE_TLDS = ("com", "de", "es", "net", "eu", "co.uk")


def build_vpn_corpus(
    registry: ASRegistry,
    prefix_map: PrefixMap,
    seed: int,
    vpn_operator_fraction: float = 0.6,
    shared_ip_fraction: float = 0.15,
) -> Tuple[DNSCorpus, VPNGroundTruth]:
    """Generate the domain corpus over enterprise/educational ASes.

    Returns the corpus (analysis input) and the ground truth (generator
    input for the ``vpn-tls`` traffic profile).
    """
    if not 0.0 <= vpn_operator_fraction <= 1.0:
        raise ValueError("vpn_operator_fraction must be within [0, 1]")
    if not 0.0 <= shared_ip_fraction <= 1.0:
        raise ValueError("shared_ip_fraction must be within [0, 1]")
    rng = np.random.default_rng(seed)
    records: List[DomainRecord] = []
    resolutions: Dict[str, Tuple[int, ...]] = {}
    dedicated: Set[int] = set()
    shared: Set[int] = set()

    orgs = registry.by_category(ASCategory.ENTERPRISE)
    orgs += registry.by_category(ASCategory.EDUCATIONAL)
    for idx, info in enumerate(orgs):
        prefixes = prefix_map.prefixes_of(info.asn)
        if not prefixes:
            continue
        pool = deterministic_addresses_in(prefixes, 8, salt=info.asn)
        zone = f"ent-{info.asn}.{_ZONE_TLDS[idx % len(_ZONE_TLDS)]}"
        www_ip = int(pool[0])
        source_cycle = SOURCES[idx % len(SOURCES)]
        records.append(DomainRecord(f"www.{zone}", source_cycle))
        records.append(DomainRecord(zone, source_cycle))
        resolutions[f"www.{zone}"] = (www_ip,)
        resolutions[zone] = (www_ip,)
        for host_idx, host in enumerate(_NOISE_HOSTS[: 2 + idx % 3]):
            name = f"{host}.{zone}"
            records.append(DomainRecord(name, SOURCES[(idx + host_idx) % 3]))
            resolutions[name] = (int(pool[3 + host_idx % 4]),)
        if rng.random() >= vpn_operator_fraction:
            continue
        pattern = _GATEWAY_NAME_PATTERNS[idx % len(_GATEWAY_NAME_PATTERNS)]
        gateway_name = pattern.format(zone=zone, k=1 + idx % 7)
        is_shared = rng.random() < shared_ip_fraction
        gateway_ip = www_ip if is_shared else int(pool[1])
        records.append(
            DomainRecord(gateway_name, SOURCES[(idx + 1) % 3])
        )
        resolutions[gateway_name] = (gateway_ip,)
        if is_shared:
            shared.add(gateway_ip)
        else:
            dedicated.add(gateway_ip)
    corpus = DNSCorpus(records, resolutions)
    truth = VPNGroundTruth(frozenset(dedicated), frozenset(shared))
    return corpus, truth
