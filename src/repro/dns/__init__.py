"""DNS/domain substrate for the domain-based VPN identification (§6).

The paper mines 2.7 B domains from CT logs, 1.9 B from Rapid7 forward
DNS, and 8 M from the Cisco Umbrella toplist for labels matching
``*vpn*`` left of the public suffix.  We synthesize an equivalent
corpus (:mod:`repro.dns.corpus`) over the scenario's enterprise ASes
and provide the name-handling primitives (:mod:`repro.dns.names`) the
classifier needs.
"""

from repro.dns.names import (
    has_vpn_label,
    labels_left_of_public_suffix,
    public_suffix,
    registrable_domain,
    www_variant,
)
from repro.dns.corpus import DNSCorpus, DomainRecord, build_vpn_corpus

__all__ = [
    "public_suffix",
    "registrable_domain",
    "labels_left_of_public_suffix",
    "has_vpn_label",
    "www_variant",
    "DNSCorpus",
    "DomainRecord",
    "build_vpn_corpus",
]
