"""Domain-name handling: public suffixes, labels, the ``*vpn*`` test.

Implements the name-level primitives of the paper's §6 methodology:
identify potential VPN domains "by searching for ``*vpn*`` in any
domain label left of the public suffix (e.g.
``companyvpn3.example.com``)", and derive the ``www`` sibling used by
the shared-address elimination step.

The public-suffix list here is a small static subset sufficient for the
synthetic corpus; the lookup semantics (longest matching suffix wins,
multi-label suffixes supported) follow the real list.
"""

from __future__ import annotations

from typing import List, Tuple

#: Static public-suffix subset used by the synthetic corpus.  Multi-
#: label suffixes must be listed explicitly (longest match wins).
PUBLIC_SUFFIXES = frozenset(
    {
        "com", "net", "org", "edu", "gov", "io", "info", "biz",
        "de", "es", "eu", "us", "fr", "it", "nl", "ch", "at", "uk",
        "co.uk", "ac.uk", "com.es", "org.es", "edu.es",
    }
)

_MAX_SUFFIX_LABELS = max(s.count(".") + 1 for s in PUBLIC_SUFFIXES)


def _normalize(domain: str) -> str:
    domain = domain.strip().rstrip(".").lower()
    if not domain or ".." in domain:
        raise ValueError(f"malformed domain: {domain!r}")
    return domain


def public_suffix(domain: str) -> str:
    """The public suffix of ``domain`` (longest match).

    Raises ``ValueError`` when no registered suffix matches — the
    corpus never emits such names, and the classifier treats them as
    non-candidates upstream.
    """
    labels = _normalize(domain).split(".")
    for take in range(min(_MAX_SUFFIX_LABELS, len(labels)), 0, -1):
        candidate = ".".join(labels[-take:])
        if candidate in PUBLIC_SUFFIXES:
            return candidate
    raise ValueError(f"no known public suffix in {domain!r}")


def registrable_domain(domain: str) -> str:
    """Public suffix plus one label (``example.com`` for any subdomain).

    Raises ``ValueError`` if the domain *is* a bare public suffix.
    """
    domain = _normalize(domain)
    suffix = public_suffix(domain)
    remainder = domain[: -(len(suffix) + 1)] if domain != suffix else ""
    if not remainder:
        raise ValueError(f"{domain!r} has no registrable label")
    return f"{remainder.split('.')[-1]}.{suffix}"


def labels_left_of_public_suffix(domain: str) -> List[str]:
    """All labels of ``domain`` left of its public suffix, left to right."""
    domain = _normalize(domain)
    suffix = public_suffix(domain)
    if domain == suffix:
        return []
    remainder = domain[: -(len(suffix) + 1)]
    return remainder.split(".")


def has_vpn_label(domain: str) -> bool:
    """The paper's candidate test: ``*vpn*`` left of the public suffix.

    A label equal to or containing ``vpn`` anywhere left of the public
    suffix qualifies; a bare ``www`` host never does (``www.`` names are
    the elimination side of the methodology, not candidates).
    """
    labels = labels_left_of_public_suffix(domain)
    if not labels:
        return False
    if labels == ["www"]:
        return False
    return any("vpn" in label for label in labels)


def www_variant(domain: str) -> str:
    """The ``www`` sibling under the same registrable domain.

    §6 resolves ``www.<registrable domain>`` and discards candidates
    whose addresses match it, limiting misclassification of shared-IP
    web servers.
    """
    return f"www.{registrable_domain(domain)}"


def split_host_and_zone(domain: str) -> Tuple[str, str]:
    """Split into (host labels, registrable domain)."""
    reg = registrable_domain(domain)
    domain = _normalize(domain)
    if domain == reg:
        return "", reg
    return domain[: -(len(reg) + 1)], reg
